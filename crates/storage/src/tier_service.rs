//! The [`TierService`] seam: how record chains on the shared tier are read,
//! whether the log lives in this process or in another one.
//!
//! Indirection records shipped during migration name a `(log id, address)`
//! location on the cluster-shared storage tier (paper §3.3.2).  When source
//! and target share a process, the target resolves them with plain memory
//! reads against [`SharedBlobTier`](crate::SharedBlobTier).  When the source
//! runs in another OS process, its shared-tier log is not addressable here —
//! the chain has to be fetched over the wire.  `TierService` abstracts over
//! both:
//!
//! * the local [`SharedBlobTier`](crate::SharedBlobTier) implements it by
//!   answering [`ChainFetch::Local`], telling the caller to walk the chain
//!   itself with [`TierService::read_log`] (cheap in-memory reads);
//! * the RPC layer provides a remote implementation that dials the process
//!   hosting the log, issues a view-tagged `FetchChain` request, and hands
//!   back the chain's records in one batch ([`ChainFetch::Records`]).
//!
//! This crate knows nothing about the record format; chains are walked (and
//! record bytes interpreted) by the layers above.  [`TierRecord`] is the
//! lowest common denominator both sides agree on: a key, the log layer's
//! record-flag bits, and the value payload.

use crate::device::Result;
use crate::shared_tier::{LogId, SharedBlobTier};

/// One record fetched from a shared-tier log chain, as returned by a remote
/// [`TierService`].  `flags` carries the log layer's record-flag bits
/// verbatim (tombstone, indirection, ...); this crate does not interpret
/// them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TierRecord {
    /// The record key.
    pub key: u64,
    /// The record's flag bits, as stored in the log.
    pub flags: u16,
    /// The record's value payload.
    pub value: Vec<u8>,
}

/// A request to resolve the chain rooted at `address` within `log`.
///
/// `requester` and `view` make the fetch *view-tagged*: the process serving
/// the log validates `view` against the view number its metadata store has
/// recorded for `requester`, so a fetch from a dead migration epoch is
/// rejected instead of silently served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainFetchRequest {
    /// The shared-tier log the chain lives in.
    pub log: LogId,
    /// Byte offset of the chain's newest record within the log.
    pub address: u64,
    /// The key being resolved.
    pub key: u64,
    /// Cluster-wide id of the server asking.
    pub requester: u64,
    /// The requester's current serving view.
    pub view: u64,
}

/// The outcome of [`TierService::fetch_chain`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainFetch {
    /// The log is served by this process: walk the chain yourself with
    /// [`TierService::read_log`].
    Local,
    /// A remote service walked the chain and returned its records, newest
    /// first, at most one per key (the newest version at or below the
    /// requested address).  An empty vector means the chain holds no live
    /// record at all.
    Records(Vec<TierRecord>),
    /// The fetch could not be completed (peer unreachable, fetch rejected).
    /// The caller must treat the record as *not yet resolvable* — pending —
    /// never as missing: reporting a miss for a record that exists on an
    /// unreachable tier would break read guarantees.
    Unavailable(String),
}

/// Resolves reads of spilled record chains against the shared tier.
///
/// See the module docs for the local/remote split.  Implementations must be
/// callable from any dispatch thread.
pub trait TierService: Send + Sync {
    /// Reads `buf.len()` bytes at `offset` of `log`.  Only meaningful for
    /// logs this process hosts (i.e. after [`TierService::fetch_chain`]
    /// answered [`ChainFetch::Local`]).
    fn read_log(&self, log: LogId, offset: u64, buf: &mut [u8]) -> Result<()>;

    /// Resolves the chain named by `req`: either tells the caller to walk
    /// locally, or returns the chain's records fetched from the process
    /// hosting the log.
    fn fetch_chain(&self, req: &ChainFetchRequest) -> ChainFetch;
}

impl TierService for SharedBlobTier {
    fn read_log(&self, log: LogId, offset: u64, buf: &mut [u8]) -> Result<()> {
        SharedBlobTier::read_log(self, log, offset, buf)
    }

    fn fetch_chain(&self, _req: &ChainFetchRequest) -> ChainFetch {
        // Every log on an in-process tier is locally readable.
        ChainFetch::Local
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_tier_is_a_local_service() {
        let tier = SharedBlobTier::new(1 << 20);
        tier.handle(LogId(3));
        crate::Device::write(&tier.handle(LogId(3)), 128, &[0xCD; 32]).unwrap();
        let svc: &dyn TierService = tier.as_ref();
        let req = ChainFetchRequest {
            log: LogId(3),
            address: 128,
            key: 1,
            requester: 0,
            view: 1,
        };
        assert_eq!(svc.fetch_chain(&req), ChainFetch::Local);
        let mut buf = [0u8; 32];
        svc.read_log(LogId(3), 128, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0xCD));
    }
}
