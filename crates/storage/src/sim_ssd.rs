//! An in-memory stand-in for the local NVMe SSD.

use parking_lot::RwLock;

use crate::counters::DeviceCounters;
use crate::device::{Device, DeviceError, Result};
use crate::latency::LatencyModel;

/// Size of the internal storage chunks.  Writes may span chunks; this is an
/// implementation detail, not the HybridLog page size.
const CHUNK_SIZE: usize = 64 * 1024;

/// A simulated local SSD backed by RAM.
///
/// The device stores data in fixed-size chunks allocated lazily, so sparse
/// address spaces (the HybridLog only ever writes the stable region) do not
/// consume memory for unwritten ranges.  A [`LatencyModel`] charges each
/// access a service time so that I/O-bound experiment phases (the Rocksteady
/// scan in Figure 10c) cost the right relative amount.
pub struct SimSsd {
    chunks: RwLock<Vec<Option<Box<[u8]>>>>,
    capacity: u64,
    latency: LatencyModel,
    counters: DeviceCounters,
    name: String,
}

impl std::fmt::Debug for SimSsd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimSsd")
            .field("name", &self.name)
            .field("capacity", &self.capacity)
            .field("written_extent", &self.written_extent())
            .finish()
    }
}

impl SimSsd {
    /// Creates a device with `capacity` bytes and no access latency.
    pub fn new(capacity: u64) -> Self {
        Self::with_latency(capacity, LatencyModel::instant())
    }

    /// Creates a device with `capacity` bytes and the given latency model.
    pub fn with_latency(capacity: u64, latency: LatencyModel) -> Self {
        let n_chunks = (capacity as usize).div_ceil(CHUNK_SIZE);
        Self {
            chunks: RwLock::new((0..n_chunks).map(|_| None).collect()),
            capacity,
            latency,
            counters: DeviceCounters::new(),
            name: "sim-ssd".to_string(),
        }
    }

    /// Renames the device (useful when several appear in one report).
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The configured capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// The latency model in force.
    pub fn latency_model(&self) -> LatencyModel {
        self.latency
    }

    fn check_range(&self, offset: u64, len: usize) -> Result<()> {
        // Saturate so an offset near u64::MAX cannot wrap past the
        // capacity check (and then index off the end of the chunk table).
        let end = offset.saturating_add(len as u64);
        if end > self.capacity {
            return Err(DeviceError::OutOfCapacity {
                end,
                capacity: self.capacity,
            });
        }
        Ok(())
    }
}

impl Device for SimSsd {
    fn write(&self, offset: u64, data: &[u8]) -> Result<()> {
        self.check_range(offset, data.len())?;
        self.latency.apply(data.len());
        let mut chunks = self.chunks.write();
        let mut remaining = data;
        let mut pos = offset as usize;
        while !remaining.is_empty() {
            let chunk_idx = pos / CHUNK_SIZE;
            let chunk_off = pos % CHUNK_SIZE;
            let n = remaining.len().min(CHUNK_SIZE - chunk_off);
            let chunk =
                chunks[chunk_idx].get_or_insert_with(|| vec![0u8; CHUNK_SIZE].into_boxed_slice());
            chunk[chunk_off..chunk_off + n].copy_from_slice(&remaining[..n]);
            remaining = &remaining[n..];
            pos += n;
        }
        self.counters.record_write(data.len());
        Ok(())
    }

    fn read(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.check_range(offset, buf.len())?;
        self.latency.apply(buf.len());
        let chunks = self.chunks.read();
        let mut pos = offset as usize;
        let mut filled = 0usize;
        while filled < buf.len() {
            let chunk_idx = pos / CHUNK_SIZE;
            let chunk_off = pos % CHUNK_SIZE;
            let n = (buf.len() - filled).min(CHUNK_SIZE - chunk_off);
            match &chunks[chunk_idx] {
                Some(chunk) => {
                    buf[filled..filled + n].copy_from_slice(&chunk[chunk_off..chunk_off + n])
                }
                None => {
                    return Err(DeviceError::UnwrittenRange {
                        offset,
                        len: buf.len(),
                    })
                }
            }
            filled += n;
            pos += n;
        }
        self.counters.record_read(buf.len());
        Ok(())
    }

    fn written_extent(&self) -> u64 {
        let chunks = self.chunks.read();
        let last = chunks.iter().rposition(|c| c.is_some());
        match last {
            Some(idx) => ((idx + 1) * CHUNK_SIZE) as u64,
            None => 0,
        }
    }

    fn counters(&self) -> &DeviceCounters {
        &self.counters
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let dev = SimSsd::new(1 << 20);
        let data: Vec<u8> = (0..4096).map(|i| (i % 251) as u8).collect();
        dev.write(8192, &data).unwrap();
        let mut out = vec![0u8; 4096];
        dev.read(8192, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn write_spanning_chunks_roundtrips() {
        let dev = SimSsd::new(1 << 20);
        let data: Vec<u8> = (0..CHUNK_SIZE * 2 + 100).map(|i| (i % 199) as u8).collect();
        let off = (CHUNK_SIZE - 50) as u64;
        dev.write(off, &data).unwrap();
        let mut out = vec![0u8; data.len()];
        dev.read(off, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn read_of_unwritten_range_fails() {
        let dev = SimSsd::new(1 << 20);
        let mut out = vec![0u8; 16];
        assert!(matches!(
            dev.read(0, &mut out),
            Err(DeviceError::UnwrittenRange { .. })
        ));
    }

    #[test]
    fn capacity_is_enforced() {
        let dev = SimSsd::new(1024);
        assert!(matches!(
            dev.write(1020, &[0u8; 16]),
            Err(DeviceError::OutOfCapacity { .. })
        ));
        let mut buf = [0u8; 16];
        assert!(matches!(
            dev.read(1020, &mut buf),
            Err(DeviceError::OutOfCapacity { .. })
        ));
    }

    #[test]
    fn counters_track_io() {
        let dev = SimSsd::new(1 << 20);
        dev.write(0, &[1u8; 100]).unwrap();
        let mut buf = [0u8; 100];
        dev.read(0, &mut buf).unwrap();
        let s = dev.counters().snapshot();
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 1);
        assert_eq!(s.bytes_written, 100);
        assert_eq!(s.bytes_read, 100);
    }

    #[test]
    fn written_extent_tracks_highest_chunk() {
        let dev = SimSsd::new(1 << 20);
        assert_eq!(dev.written_extent(), 0);
        dev.write((CHUNK_SIZE * 3) as u64, &[1u8; 10]).unwrap();
        assert_eq!(dev.written_extent(), (CHUNK_SIZE * 4) as u64);
    }

    #[test]
    fn concurrent_disjoint_writes() {
        use std::sync::Arc;
        let dev = Arc::new(SimSsd::new(1 << 22));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let dev = dev.clone();
            handles.push(std::thread::spawn(move || {
                let data = vec![t as u8 + 1; 4096];
                for i in 0..16u64 {
                    dev.write((t * 16 + i) * 4096, &data).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for t in 0..4u64 {
            let mut buf = vec![0u8; 4096];
            dev.read(t * 16 * 4096, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == t as u8 + 1));
        }
    }
}
