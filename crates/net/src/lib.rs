//! Networking substrate: wire messages, sessions with pipelined batches, a
//! pluggable transport layer, and a simulated fabric with per-transport
//! CPU-cost profiles.
//!
//! The paper's servers and clients communicate over ordinary Linux TCP whose
//! packet-processing CPU cost is partially offloaded to SmartNIC FPGAs
//! ("accelerated networking"), or over two-sided RDMA on HPC instances.
//! This crate models what matters to the system's behaviour and defines the
//! seams real transports plug into:
//!
//! * **messages** — [`KvRequest`]s travel in [`RequestBatch`]es tagged with
//!   the client's cached view number; [`BatchReply`] either answers every
//!   operation or rejects the whole batch with the server's current view
//!   (paper §3.2).
//! * **sessions** — a [`ClientSession`] connects one client thread to one
//!   server thread, carrying pipelined batches of asynchronous requests with
//!   completion callbacks (paper §3.1.1, §3.2).
//! * **transports** — the [`Transport`] / [`KvLink`] traits decouple the
//!   session machinery from the bytes underneath:
//!
//!   | implementation | where | what it is |
//!   |---|---|---|
//!   | [`SimNetwork`] | this crate | in-process fabric charging [`NetworkProfile`] CPU costs per batch/byte (Table 2 presets) |
//!   | `TcpTransport` | `shadowfax-rpc` | real loopback/LAN TCP sockets speaking the length-prefixed wire codec |
//!
//!   A [`Transport`] opens [`KvLink`]s to string addresses.  Fabric
//!   addresses name a server dispatch thread (`"sv0/t3"`); the TCP transport
//!   prefixes the socket address (`"127.0.0.1:4870/sv0/t3"`).  Because
//!   [`ClientSession`] is written purely against `dyn KvLink`, the paper's
//!   client-side properties (batching, pipelining, view stamping, parking on
//!   rejection) hold identically over the simulator and over real sockets.
//! * **typed errors** — [`TransportError`] / [`SessionError`] replace the
//!   old ad-hoc `bool`/`Option` signalling, and carry a stable one-byte
//!   [`StatusCode`] so the RPC layer can put them on the wire.
//! * **liveness** — [`PeerLiveness`] / [`LivenessConfig`] track whether the
//!   peer on a long-lived link (a migration control connection) is still
//!   alive: heartbeats with a miss budget, plus explicit peer-death from
//!   transport errors.  The migration state machines use it to cancel a
//!   migration whose peer died instead of wedging forever.
//! * **reactor** — [`Reactor`] / [`Interest`] / [`Token`] wrap Linux
//!   `epoll` (direct syscall bindings, no external crates) with
//!   edge-triggered readiness and an `eventfd` wakeup channel.  The RPC
//!   server's I/O threads and the tier daemon's event loop are built on
//!   it, so idle connections cost no CPU.
//!
//! The simulated fabric remains generic over the message type; the Shadowfax
//! core crate instantiates it with its client/server and server/server
//! message enums.

#![warn(missing_docs)]

mod error;
mod liveness;
mod message;
mod profile;
pub mod reactor;
mod session;
mod sim;
mod transport;

pub use error::{SessionError, StatusCode, TransportError};
pub use liveness::{LivenessConfig, PeerLiveness};
pub use message::{BatchReply, KvRequest, KvResponse, RequestBatch, WireSize};
pub use profile::NetworkProfile;
pub use reactor::{raise_nofile_limit, Event, Interest, Reactor, Token};
pub use session::{Callback, ClientSession, SessionConfig, SessionStats};
pub use sim::{Connection, ConnectionStats, Listener, SimNetwork};
pub use transport::{KvLink, MigrationLink, MigrationSendError, Transport};
