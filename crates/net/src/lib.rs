//! Networking substrate: wire messages, sessions with pipelined batches, and
//! a simulated transport with per-transport CPU-cost profiles.
//!
//! The paper's servers and clients communicate over ordinary Linux TCP whose
//! packet-processing CPU cost is partially offloaded to SmartNIC FPGAs
//! ("accelerated networking"), or over two-sided RDMA on HPC instances.  None
//! of that hardware exists here, so this crate models what actually matters
//! to the system's behaviour:
//!
//! * **sessions** — a connection between one client thread and one server
//!   thread carrying pipelined batches of asynchronous requests tagged with a
//!   view number (paper §3.1.1, §3.2);
//! * **transport cost** — a [`NetworkProfile`] charges CPU time per batch and
//!   per byte on both the send and receive paths, plus a propagation delay.
//!   The presets (`tcp_accelerated`, `tcp_no_accel`, `infrc`, `tcp_ipoib`)
//!   correspond to the four rows of Table 2; the analytical benchmark mode
//!   uses the same numbers to derive saturation throughput, batch size, and
//!   latency.
//!
//! Transports are generic over the message type; the Shadowfax core crate
//! instantiates them with its client/server and server/server message enums.

#![warn(missing_docs)]

mod message;
mod profile;
mod session;
mod transport;

pub use message::{BatchReply, KvRequest, KvResponse, RequestBatch, WireSize};
pub use profile::NetworkProfile;
pub use session::{ClientSession, SessionConfig, SessionStats};
pub use transport::{Connection, ConnectionStats, Listener, SimNetwork};
