//! Client-side sessions: asynchronous requests, batching, pipelining, and
//! view-tagged batches (paper §3.1.1).
//!
//! A session connects one client thread to one server thread.  The client
//! thread *issues* operations together with a completion callback; the
//! session buffers them, sends them out in batches tagged with the cached
//! view number, keeps multiple batches in flight, and executes callbacks as
//! replies arrive.  The issuing thread never blocks — this is the paper's
//! "end-to-end asynchronous clients" property.
//!
//! The session is written against the [`KvLink`] trait, so exactly the same
//! batching/pipelining machinery drives the in-process simulated fabric and
//! real TCP sockets (`shadowfax-rpc`).
//!
//! When the server rejects a batch because of a view mismatch (ownership
//! changed), the session parks the affected operations and records a typed
//! [`SessionError::StaleView`]; the Shadowfax client library refreshes its
//! ownership mappings from the metadata store and re-routes them (possibly
//! onto a different session).

use std::collections::VecDeque;

use crate::error::SessionError;
use crate::message::{BatchReply, KvRequest, KvResponse, RequestBatch, WireSize};
use crate::transport::KvLink;

/// A completion callback invoked with the operation's response.
pub type Callback = Box<dyn FnOnce(KvResponse) + Send>;

/// Batching and pipelining knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionConfig {
    /// Maximum operations per batch.
    pub max_batch_ops: usize,
    /// Flush a batch once its serialized size reaches this many bytes
    /// (Table 2's "batch size" column is this quantity at saturation).
    pub max_batch_bytes: usize,
    /// Maximum batches in flight before buffered operations simply accumulate
    /// (bounded queue depth; Table 2's "queue depth" column).
    pub max_inflight_batches: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            max_batch_ops: 512,
            max_batch_bytes: 32 * 1024,
            max_inflight_batches: 8,
        }
    }
}

/// Counters kept by each session.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SessionStats {
    /// Operations issued by the application.
    pub ops_issued: u64,
    /// Operations whose callback has run.
    pub ops_completed: u64,
    /// Batches sent.
    pub batches_sent: u64,
    /// Batch rejections due to view mismatches.
    pub batches_rejected: u64,
    /// Total bytes of request batches sent.
    pub bytes_sent: u64,
}

struct InflightBatch {
    seq: u64,
    ops: Vec<(KvRequest, Callback)>,
}

/// A pipelined, batched session from one client thread to one server thread,
/// over any [`KvLink`] implementation.
pub struct ClientSession {
    link: Box<dyn KvLink>,
    config: SessionConfig,
    /// View number the client believes the server is in; stamped on batches.
    view: u64,
    next_seq: u64,
    buffer: Vec<(KvRequest, Callback)>,
    buffer_bytes: usize,
    inflight: VecDeque<InflightBatch>,
    /// Operations from rejected batches, waiting for the owner's view to be
    /// refreshed and the ops re-routed by the client library.
    parked: Vec<(KvRequest, Callback)>,
    /// The typed rejection recorded when the server reported a newer view.
    rejection: Option<SessionError>,
    stats: SessionStats,
}

impl std::fmt::Debug for ClientSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientSession")
            .field("peer", &self.link.peer_label())
            .field("view", &self.view)
            .field("buffered", &self.buffer.len())
            .field("inflight", &self.inflight.len())
            .field("parked", &self.parked.len())
            .finish()
    }
}

impl ClientSession {
    /// Wraps a link into a session, starting in `view`.
    pub fn new(link: impl KvLink + 'static, view: u64, config: SessionConfig) -> Self {
        Self::from_link(Box::new(link), view, config)
    }

    /// Wraps an already boxed link into a session, starting in `view`.
    pub fn from_link(link: Box<dyn KvLink>, view: u64, config: SessionConfig) -> Self {
        ClientSession {
            link,
            config,
            view,
            next_seq: 1,
            buffer: Vec::new(),
            buffer_bytes: 0,
            inflight: VecDeque::new(),
            parked: Vec::new(),
            rejection: None,
            stats: SessionStats::default(),
        }
    }

    /// The view number currently stamped on outgoing batches.
    pub fn view(&self) -> u64 {
        self.view
    }

    /// Updates the view stamped on future batches (after the client library
    /// refreshed ownership mappings from the metadata store).
    pub fn set_view(&mut self, view: u64) {
        self.view = view;
        self.rejection = None;
    }

    /// If a rejection reported a newer server view, returns it.
    pub fn stale_view(&self) -> Option<u64> {
        match self.rejection {
            Some(SessionError::StaleView { server_view, .. }) => Some(server_view),
            _ => None,
        }
    }

    /// The typed error recorded by the most recent batch rejection, if any.
    /// Cleared by [`ClientSession::set_view`].
    pub fn rejection_error(&self) -> Option<&SessionError> {
        self.rejection.as_ref()
    }

    /// Session counters.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Operations buffered but not yet sent.
    pub fn buffered_ops(&self) -> usize {
        self.buffer.len()
    }

    /// Batches currently in flight.
    pub fn inflight_batches(&self) -> usize {
        self.inflight.len()
    }

    /// Operations awaiting completion (buffered, in flight, or parked).
    pub fn outstanding_ops(&self) -> usize {
        self.buffer.len()
            + self.parked.len()
            + self.inflight.iter().map(|b| b.ops.len()).sum::<usize>()
    }

    /// Issues an asynchronous operation.  Never blocks: the operation is
    /// buffered and `callback` runs when its reply arrives.
    pub fn issue(&mut self, request: KvRequest, callback: Callback) {
        self.stats.ops_issued += 1;
        self.buffer_bytes += request.wire_size();
        self.buffer.push((request, callback));
        if self.buffer.len() >= self.config.max_batch_ops
            || self.buffer_bytes >= self.config.max_batch_bytes
        {
            // A full buffer flushes eagerly; a transport failure leaves the
            // operations buffered and surfaces on the next explicit flush or
            // poll.
            let _ = self.flush();
        }
    }

    /// Sends the currently buffered operations as one batch (if the pipeline
    /// has room).  Returns `Ok(true)` if a batch was sent; a transport
    /// failure leaves the operations buffered for a later retry.
    pub fn flush(&mut self) -> Result<bool, SessionError> {
        if self.buffer.is_empty() || self.inflight.len() >= self.config.max_inflight_batches {
            return Ok(false);
        }
        let batch = RequestBatch {
            view: self.view,
            seq: self.next_seq,
            ops: self.buffer.iter().map(|(r, _)| r.clone()).collect(),
        };
        let wire_bytes = batch.wire_size() as u64;
        self.link.send_batch(batch).map_err(SessionError::from)?;
        let ops = std::mem::take(&mut self.buffer);
        self.buffer_bytes = 0;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stats.batches_sent += 1;
        self.stats.bytes_sent += wire_bytes;
        self.inflight.push_back(InflightBatch { seq, ops });
        Ok(true)
    }

    /// Receives any available replies and runs their callbacks.  Returns the
    /// number of operations completed by this call.
    pub fn poll(&mut self) -> Result<usize, SessionError> {
        let mut completed = 0;
        while let Some(reply) = self.link.try_recv_reply().map_err(SessionError::from)? {
            completed += self.handle_reply(reply);
        }
        // Keep the pipeline full.
        while !self.buffer.is_empty() && self.inflight.len() < self.config.max_inflight_batches {
            if !self.flush()? {
                break;
            }
        }
        Ok(completed)
    }

    fn handle_reply(&mut self, reply: BatchReply) -> usize {
        let seq = reply.seq();
        let Some(pos) = self.inflight.iter().position(|b| b.seq == seq) else {
            return 0;
        };
        let batch = self.inflight.remove(pos).expect("position just found");
        match reply {
            BatchReply::Executed { results, .. } => {
                debug_assert_eq!(results.len(), batch.ops.len(), "reply arity mismatch");
                let mut completed = 0;
                for ((_, cb), result) in batch.ops.into_iter().zip(results) {
                    cb(result);
                    completed += 1;
                    self.stats.ops_completed += 1;
                }
                completed
            }
            BatchReply::Rejected { server_view, .. } => {
                self.stats.batches_rejected += 1;
                self.rejection = Some(SessionError::StaleView {
                    session_view: self.view,
                    server_view,
                });
                self.parked.extend(batch.ops);
                0
            }
        }
    }

    /// Removes and returns operations parked by batch rejections so the
    /// client library can re-route them after refreshing ownership mappings.
    pub fn take_parked(&mut self) -> Vec<(KvRequest, Callback)> {
        std::mem::take(&mut self.parked)
    }

    /// Removes and returns every operation that was never put on the wire:
    /// parked operations plus the unsent send buffer.  Used when tearing
    /// down a session over a failed link — these operations can safely be
    /// re-routed because the server never saw them.  (Operations in flight
    /// have unknown outcomes and are deliberately not returned.)
    pub fn take_unsent(&mut self) -> Vec<(KvRequest, Callback)> {
        self.buffer_bytes = 0;
        let mut out = std::mem::take(&mut self.parked);
        out.extend(std::mem::take(&mut self.buffer));
        out
    }

    /// `true` if nothing is buffered, in flight, or parked.
    pub fn is_quiescent(&self) -> bool {
        self.outstanding_ops() == 0
    }

    /// The underlying link (e.g. for checking peer liveness).
    pub fn link(&self) -> &dyn KvLink {
        self.link.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::NetworkProfile;
    use crate::sim::{Connection, SimNetwork};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    type Net = SimNetwork<RequestBatch, BatchReply>;

    fn setup(config: SessionConfig) -> (ClientSession, Connection<BatchReply, RequestBatch>) {
        let net: Arc<Net> = SimNetwork::new(NetworkProfile::instant());
        let listener = net.listen("srv");
        let conn = net.connect("srv").unwrap();
        let server = listener.try_accept().unwrap();
        (ClientSession::new(conn, 1, config), server)
    }

    fn echo_server(server: &Connection<BatchReply, RequestBatch>) -> usize {
        let mut handled = 0;
        for batch in server.drain() {
            let results = batch
                .ops
                .iter()
                .map(|op| match op {
                    KvRequest::Read { key } => KvResponse::Value(Some(key.to_le_bytes().to_vec())),
                    KvRequest::Upsert { .. } => KvResponse::Ok,
                    KvRequest::RmwAdd { delta, .. } => KvResponse::Counter(*delta),
                    KvRequest::Delete { .. } => KvResponse::Deleted(true),
                })
                .collect();
            handled += batch.ops.len();
            server.send(BatchReply::Executed {
                seq: batch.seq,
                results,
            });
        }
        handled
    }

    #[test]
    fn issue_batches_when_full() {
        let config = SessionConfig {
            max_batch_ops: 4,
            max_batch_bytes: usize::MAX,
            max_inflight_batches: 8,
        };
        let (mut session, server) = setup(config);
        for key in 0..3u64 {
            session.issue(KvRequest::Read { key }, Box::new(|_| {}));
        }
        assert_eq!(
            session.stats().batches_sent,
            0,
            "batch sent before it was full"
        );
        session.issue(KvRequest::Read { key: 3 }, Box::new(|_| {}));
        assert_eq!(session.stats().batches_sent, 1);
        assert_eq!(server.drain().len(), 1);
    }

    #[test]
    fn callbacks_run_with_matching_results() {
        let (mut session, server) = setup(SessionConfig::default());
        let sum = Arc::new(AtomicU64::new(0));
        for key in 1..=10u64 {
            let sum = Arc::clone(&sum);
            session.issue(
                KvRequest::Read { key },
                Box::new(move |resp| {
                    if let KvResponse::Value(Some(bytes)) = resp {
                        sum.fetch_add(
                            u64::from_le_bytes(bytes.try_into().unwrap()),
                            Ordering::SeqCst,
                        );
                    }
                }),
            );
        }
        session.flush().unwrap();
        echo_server(&server);
        let completed = session.poll().unwrap();
        assert_eq!(completed, 10);
        assert_eq!(sum.load(Ordering::SeqCst), 55);
        assert!(session.is_quiescent());
    }

    #[test]
    fn pipelining_keeps_multiple_batches_in_flight() {
        let config = SessionConfig {
            max_batch_ops: 10,
            max_batch_bytes: usize::MAX,
            max_inflight_batches: 3,
        };
        let (mut session, _server) = setup(config);
        for key in 0..35u64 {
            session.issue(KvRequest::Read { key }, Box::new(|_| {}));
        }
        // 3 batches of 10 go out; the 4th batch's worth stays buffered because
        // the pipeline is full.
        assert_eq!(session.inflight_batches(), 3);
        assert_eq!(session.buffered_ops(), 5);
        assert_eq!(session.outstanding_ops(), 35);
    }

    #[test]
    fn rejection_parks_ops_and_reports_new_view() {
        let (mut session, server) = setup(SessionConfig::default());
        for key in 0..5u64 {
            session.issue(KvRequest::RmwAdd { key, delta: 1 }, Box::new(|_| {}));
        }
        session.flush().unwrap();
        let batch = server.drain().pop().unwrap();
        server.send(BatchReply::Rejected {
            seq: batch.seq,
            server_view: 9,
        });
        let completed = session.poll().unwrap();
        assert_eq!(completed, 0);
        assert_eq!(session.stale_view(), Some(9));
        assert_eq!(
            session.rejection_error(),
            Some(&SessionError::StaleView {
                session_view: 1,
                server_view: 9
            })
        );
        assert_eq!(session.stats().batches_rejected, 1);
        let parked = session.take_parked();
        assert_eq!(parked.len(), 5);
        assert!(session.is_quiescent());
        session.set_view(9);
        assert_eq!(session.view(), 9);
        assert_eq!(session.stale_view(), None);
        assert!(session.rejection_error().is_none());
    }

    #[test]
    fn poll_refills_pipeline_after_completion() {
        let config = SessionConfig {
            max_batch_ops: 5,
            max_batch_bytes: usize::MAX,
            max_inflight_batches: 1,
        };
        let (mut session, server) = setup(config);
        for key in 0..10u64 {
            session.issue(KvRequest::Read { key }, Box::new(|_| {}));
        }
        assert_eq!(session.inflight_batches(), 1);
        assert_eq!(session.buffered_ops(), 5);
        echo_server(&server);
        session.poll().unwrap();
        // The reply freed a pipeline slot, so the next batch went out.
        assert_eq!(session.inflight_batches(), 1);
        assert_eq!(session.buffered_ops(), 0);
        echo_server(&server);
        assert_eq!(session.poll().unwrap(), 5);
        assert_eq!(session.stats().ops_completed, 10);
    }

    #[test]
    fn byte_threshold_triggers_flush() {
        let config = SessionConfig {
            max_batch_ops: usize::MAX,
            max_batch_bytes: 1024,
            max_inflight_batches: 8,
        };
        let (mut session, server) = setup(config);
        // Each upsert is ~272 bytes on the wire; the 4th crosses 1 KiB.
        for key in 0..4u64 {
            session.issue(
                KvRequest::Upsert {
                    key,
                    value: vec![0u8; 256],
                },
                Box::new(|_| {}),
            );
        }
        assert_eq!(session.stats().batches_sent, 1);
        assert_eq!(server.drain().len(), 1);
    }

    #[test]
    fn send_failure_is_typed_and_keeps_ops_buffered() {
        let (mut session, server) = setup(SessionConfig::default());
        drop(server);
        session.issue(KvRequest::Read { key: 1 }, Box::new(|_| {}));
        let err = session.flush().unwrap_err();
        assert!(matches!(err, SessionError::Transport(_)));
        // The operation was not lost: it is still buffered for a re-route.
        assert_eq!(session.buffered_ops(), 1);
        assert!(!session.link().is_open());
    }
}
