//! The simulated transport (see `transport` for the trait layer): in-process connections between client threads and
//! server threads with per-message CPU cost and propagation delay.
//!
//! A [`SimNetwork`] plays the role of the cloud fabric.  Server threads
//! register listeners under string addresses (e.g. `"server-0/thread-3"`),
//! clients connect to those addresses, and each side gets a [`Connection`]
//! carrying typed messages.  Every send and receive is charged the CPU cost
//! of the connection's [`NetworkProfile`], which is how the reproduction
//! models accelerated vs. unaccelerated TCP and RDMA.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use parking_lot::Mutex;

use crate::message::WireSize;
use crate::profile::NetworkProfile;

/// Per-connection traffic counters.
#[derive(Debug, Default)]
pub struct ConnectionStats {
    msgs_sent: AtomicU64,
    bytes_sent: AtomicU64,
    msgs_received: AtomicU64,
    bytes_received: AtomicU64,
    cpu_ns_spent: AtomicU64,
}

impl ConnectionStats {
    /// Messages sent on this end.
    pub fn msgs_sent(&self) -> u64 {
        self.msgs_sent.load(Ordering::Relaxed)
    }
    /// Bytes sent on this end.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }
    /// Messages received on this end.
    pub fn msgs_received(&self) -> u64 {
        self.msgs_received.load(Ordering::Relaxed)
    }
    /// Bytes received on this end.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received.load(Ordering::Relaxed)
    }
    /// CPU nanoseconds charged to this end for transport processing.
    pub fn cpu_ns_spent(&self) -> u64 {
        self.cpu_ns_spent.load(Ordering::Relaxed)
    }
}

struct Timed<M> {
    deliver_at: Instant,
    msg: M,
}

/// One endpoint of a bidirectional connection that sends messages of type `S`
/// and receives messages of type `R`.
pub struct Connection<S, R> {
    tx: Sender<Timed<S>>,
    rx: Receiver<Timed<R>>,
    /// A message popped from the channel but not yet deliverable (propagation
    /// delay has not elapsed).
    stash: Mutex<Option<Timed<R>>>,
    profile: NetworkProfile,
    stats: Arc<ConnectionStats>,
    peer_closed_marker: Arc<()>,
}

impl<S, R> std::fmt::Debug for Connection<S, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Connection")
            .field("profile", &self.profile.name)
            .finish()
    }
}

impl<S: WireSize + Send + 'static, R: WireSize + Send + 'static> Connection<S, R> {
    /// Sends `msg` to the peer, charging this side the profile's send cost.
    /// Returns `false` if the peer end has been dropped.
    pub fn send(&self, msg: S) -> bool {
        let bytes = msg.wire_size();
        let cost = self.profile.spend(self.profile.send_cost(bytes));
        self.stats.msgs_sent.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_sent
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.stats
            .cpu_ns_spent
            .fetch_add(cost.as_nanos() as u64, Ordering::Relaxed);
        self.tx
            .send(Timed {
                deliver_at: Instant::now() + self.profile.propagation,
                msg,
            })
            .is_ok()
    }

    /// Like [`Connection::send`], but hands the message back if the peer end
    /// has been dropped, so the caller can retry or re-route it.
    pub fn try_send(&self, msg: S) -> Result<(), S> {
        let bytes = msg.wire_size();
        let cost = self.profile.spend(self.profile.send_cost(bytes));
        self.stats.msgs_sent.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_sent
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.stats
            .cpu_ns_spent
            .fetch_add(cost.as_nanos() as u64, Ordering::Relaxed);
        self.tx
            .send(Timed {
                deliver_at: Instant::now() + self.profile.propagation,
                msg,
            })
            .map_err(|e| e.0.msg)
    }

    /// Attempts to receive one message whose propagation delay has elapsed,
    /// charging this side the profile's receive cost.
    pub fn try_recv(&self) -> Option<R> {
        let candidate = {
            let mut stash = self.stash.lock();
            match stash.take() {
                Some(t) => Some(t),
                None => match self.rx.try_recv() {
                    Ok(t) => Some(t),
                    Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
                },
            }
        };
        let timed = candidate?;
        if timed.deliver_at > Instant::now() {
            *self.stash.lock() = Some(timed);
            return None;
        }
        let bytes = timed.msg.wire_size();
        let cost = self.profile.spend(self.profile.recv_cost(bytes));
        self.stats.msgs_received.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_received
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.stats
            .cpu_ns_spent
            .fetch_add(cost.as_nanos() as u64, Ordering::Relaxed);
        Some(timed.msg)
    }

    /// Drains every currently deliverable message.
    pub fn drain(&self) -> Vec<R> {
        let mut out = Vec::new();
        while let Some(m) = self.try_recv() {
            out.push(m);
        }
        out
    }

    /// Traffic counters for this endpoint.
    pub fn stats(&self) -> &ConnectionStats {
        &self.stats
    }

    /// The cost profile in force on this endpoint.
    pub fn profile(&self) -> &NetworkProfile {
        &self.profile
    }

    /// `true` once the peer endpoint has been dropped.
    pub fn peer_closed(&self) -> bool {
        // Two strong references exist while both ends are alive (one per end).
        Arc::strong_count(&self.peer_closed_marker) < 2
    }
}

/// A listener registered under an address; yields the server-side endpoint of
/// each accepted connection.  The server-side endpoint sends `S2C` messages
/// and receives `C2S` messages.
pub struct Listener<C2S, S2C> {
    incoming: Receiver<Connection<S2C, C2S>>,
}

impl<C2S, S2C> std::fmt::Debug for Listener<C2S, S2C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Listener")
    }
}

impl<C2S, S2C> Listener<C2S, S2C> {
    /// Accepts one pending connection, if any.
    pub fn try_accept(&self) -> Option<Connection<S2C, C2S>> {
        self.incoming.try_recv().ok()
    }

    /// Accepts every pending connection.
    pub fn accept_all(&self) -> Vec<Connection<S2C, C2S>> {
        let mut out = Vec::new();
        while let Ok(c) = self.incoming.try_recv() {
            out.push(c);
        }
        out
    }
}

/// The in-process fabric: a registry of listeners by address.
///
/// `C2S` is the client-to-server message type, `S2C` the server-to-client
/// message type.
pub struct SimNetwork<C2S, S2C> {
    listeners: Mutex<HashMap<String, Sender<Connection<S2C, C2S>>>>,
    default_profile: NetworkProfile,
}

impl<C2S, S2C> std::fmt::Debug for SimNetwork<C2S, S2C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimNetwork")
            .field("listeners", &self.listeners.lock().len())
            .field("profile", &self.default_profile.name)
            .finish()
    }
}

impl<C2S: WireSize + Send + 'static, S2C: WireSize + Send + 'static> SimNetwork<C2S, S2C> {
    /// Creates a fabric whose connections use `profile` by default.
    pub fn new(profile: NetworkProfile) -> Arc<Self> {
        Arc::new(SimNetwork {
            listeners: Mutex::new(HashMap::new()),
            default_profile: profile,
        })
    }

    /// The fabric-wide default profile.
    pub fn default_profile(&self) -> NetworkProfile {
        self.default_profile
    }

    /// Registers a listener at `addr`.  Panics if the address is taken.
    pub fn listen(&self, addr: &str) -> Listener<C2S, S2C> {
        let (tx, rx) = unbounded();
        let prev = self.listeners.lock().insert(addr.to_string(), tx);
        assert!(prev.is_none(), "address {addr} already has a listener");
        Listener { incoming: rx }
    }

    /// Removes the listener at `addr` (server shutdown).
    pub fn unlisten(&self, addr: &str) {
        self.listeners.lock().remove(addr);
    }

    /// `true` if a listener is registered at `addr`.
    pub fn has_listener(&self, addr: &str) -> bool {
        self.listeners.lock().contains_key(addr)
    }

    /// Connects to the listener at `addr` using the fabric's default profile.
    pub fn connect(&self, addr: &str) -> Option<Connection<C2S, S2C>> {
        self.connect_with(addr, self.default_profile)
    }

    /// Connects to the listener at `addr` with an explicit profile.
    pub fn connect_with(
        &self,
        addr: &str,
        profile: NetworkProfile,
    ) -> Option<Connection<C2S, S2C>> {
        let accept_tx = self.listeners.lock().get(addr).cloned()?;
        let (c2s_tx, c2s_rx) = unbounded();
        let (s2c_tx, s2c_rx) = unbounded();
        let marker = Arc::new(());
        let client_end = Connection {
            tx: c2s_tx,
            rx: s2c_rx,
            stash: Mutex::new(None),
            profile,
            stats: Arc::new(ConnectionStats::default()),
            peer_closed_marker: Arc::clone(&marker),
        };
        let server_end = Connection {
            tx: s2c_tx,
            rx: c2s_rx,
            stash: Mutex::new(None),
            profile,
            stats: Arc::new(ConnectionStats::default()),
            peer_closed_marker: marker,
        };
        accept_tx.send(server_end).ok()?;
        Some(client_end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{KvRequest, RequestBatch};

    fn batch(seq: u64) -> RequestBatch {
        RequestBatch {
            view: 1,
            seq,
            ops: vec![KvRequest::Read { key: seq }],
        }
    }

    #[test]
    fn connect_and_exchange_messages() {
        let net: Arc<SimNetwork<RequestBatch, RequestBatch>> =
            SimNetwork::new(NetworkProfile::instant());
        let listener = net.listen("server-0/0");
        let client = net.connect("server-0/0").unwrap();
        let server = listener.try_accept().unwrap();

        assert!(client.send(batch(1)));
        assert!(client.send(batch(2)));
        let got = server.drain();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].seq, 1);
        assert_eq!(got[1].seq, 2);

        assert!(server.send(batch(3)));
        assert_eq!(client.try_recv().unwrap().seq, 3);
        assert!(client.try_recv().is_none());
    }

    #[test]
    fn connect_to_unknown_address_fails() {
        let net: Arc<SimNetwork<RequestBatch, RequestBatch>> =
            SimNetwork::new(NetworkProfile::instant());
        assert!(net.connect("nowhere").is_none());
    }

    #[test]
    fn counters_track_traffic() {
        let net: Arc<SimNetwork<RequestBatch, RequestBatch>> =
            SimNetwork::new(NetworkProfile::instant());
        let listener = net.listen("s");
        let client = net.connect("s").unwrap();
        let server = listener.try_accept().unwrap();
        client.send(batch(1));
        let _ = server.drain();
        assert_eq!(client.stats().msgs_sent(), 1);
        assert!(client.stats().bytes_sent() > 0);
        assert_eq!(server.stats().msgs_received(), 1);
        assert_eq!(server.stats().bytes_received(), client.stats().bytes_sent());
    }

    #[test]
    fn propagation_delay_defers_delivery() {
        let profile = NetworkProfile {
            propagation: std::time::Duration::from_millis(30),
            ..NetworkProfile::instant()
        };
        let net: Arc<SimNetwork<RequestBatch, RequestBatch>> = SimNetwork::new(profile);
        let listener = net.listen("s");
        let client = net.connect("s").unwrap();
        let server = listener.try_accept().unwrap();
        client.send(batch(1));
        assert!(
            server.try_recv().is_none(),
            "message arrived before propagation delay"
        );
        std::thread::sleep(std::time::Duration::from_millis(40));
        assert!(server.try_recv().is_some());
    }

    #[test]
    fn peer_closed_detection() {
        let net: Arc<SimNetwork<RequestBatch, RequestBatch>> =
            SimNetwork::new(NetworkProfile::instant());
        let listener = net.listen("s");
        let client = net.connect("s").unwrap();
        let server = listener.try_accept().unwrap();
        assert!(!client.peer_closed());
        drop(server);
        assert!(client.peer_closed());
        assert!(!client.send(batch(1)), "send to a closed peer should fail");
    }

    #[test]
    fn duplicate_listener_panics() {
        let net: Arc<SimNetwork<RequestBatch, RequestBatch>> =
            SimNetwork::new(NetworkProfile::instant());
        let _a = net.listen("dup");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| net.listen("dup")));
        assert!(result.is_err());
    }

    #[test]
    fn unlisten_frees_address() {
        let net: Arc<SimNetwork<RequestBatch, RequestBatch>> =
            SimNetwork::new(NetworkProfile::instant());
        let _a = net.listen("addr");
        net.unlisten("addr");
        let _b = net.listen("addr");
    }

    #[test]
    fn cross_thread_usage() {
        let net: Arc<SimNetwork<RequestBatch, RequestBatch>> =
            SimNetwork::new(NetworkProfile::instant());
        let listener = net.listen("s");
        let net2 = Arc::clone(&net);
        let client_thread = std::thread::spawn(move || {
            let client = net2.connect("s").unwrap();
            for i in 0..100 {
                client.send(batch(i));
            }
            // Wait for 100 acks.
            let mut acks = 0;
            while acks < 100 {
                if client.try_recv().is_some() {
                    acks += 1;
                }
            }
            acks
        });
        let server = loop {
            if let Some(c) = listener.try_accept() {
                break c;
            }
        };
        let mut echoed = 0;
        while echoed < 100 {
            if let Some(m) = server.try_recv() {
                server.send(m);
                echoed += 1;
            }
        }
        assert_eq!(client_thread.join().unwrap(), 100);
    }
}
