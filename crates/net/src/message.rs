//! Wire messages exchanged between client and server threads.
//!
//! Requests travel in [`RequestBatch`]es tagged with the client's cached view
//! number for the server; replies either carry one [`KvResponse`] per request
//! or reject the whole batch with the server's current view (paper §3.2).

/// Anything with a meaningful serialized size; the transport charges per-byte
/// CPU cost based on this.
pub trait WireSize {
    /// Approximate size of the message on the wire, in bytes.
    fn wire_size(&self) -> usize;
}

/// A single key-value operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvRequest {
    /// Return the value of `key`.
    Read {
        /// Target key.
        key: u64,
    },
    /// Blindly set `key` to `value`.
    Upsert {
        /// Target key.
        key: u64,
        /// New value.
        value: Vec<u8>,
    },
    /// Add `delta` to the 8-byte counter at the head of `key`'s value
    /// (YCSB-F's read-modify-write).
    RmwAdd {
        /// Target key.
        key: u64,
        /// Increment.
        delta: u64,
    },
    /// Remove `key`.
    Delete {
        /// Target key.
        key: u64,
    },
}

impl KvRequest {
    /// The key this request targets.
    pub fn key(&self) -> u64 {
        match self {
            KvRequest::Read { key }
            | KvRequest::Upsert { key, .. }
            | KvRequest::RmwAdd { key, .. }
            | KvRequest::Delete { key } => *key,
        }
    }
}

impl WireSize for KvRequest {
    fn wire_size(&self) -> usize {
        match self {
            KvRequest::Read { .. } => 12,
            KvRequest::Upsert { value, .. } => 16 + value.len(),
            KvRequest::RmwAdd { .. } => 20,
            KvRequest::Delete { .. } => 12,
        }
    }
}

/// The result of one [`KvRequest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvResponse {
    /// Result of a read.
    Value(Option<Vec<u8>>),
    /// New counter value after an `RmwAdd`.
    Counter(u64),
    /// Upsert acknowledged.
    Ok,
    /// Delete result (`true` if the key existed).
    Deleted(bool),
    /// The operation targets a record that has not yet arrived at this server
    /// (migration in progress); the server will answer it later.
    Pending,
    /// The server could not execute the operation.
    Error(String),
}

impl WireSize for KvResponse {
    fn wire_size(&self) -> usize {
        match self {
            KvResponse::Value(Some(v)) => 9 + v.len(),
            KvResponse::Value(None) => 9,
            KvResponse::Counter(_) => 9,
            KvResponse::Ok => 1,
            KvResponse::Deleted(_) => 2,
            KvResponse::Pending => 1,
            KvResponse::Error(s) => 1 + s.len(),
        }
    }
}

/// A pipelined batch of requests from one client thread to one server thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestBatch {
    /// The view number the client believes the server is in.  A single
    /// integer comparison at the server validates ownership of every key in
    /// the batch (paper §3.2).
    pub view: u64,
    /// Client-assigned sequence number, used to match replies to batches.
    pub seq: u64,
    /// The operations.
    pub ops: Vec<KvRequest>,
}

impl WireSize for RequestBatch {
    fn wire_size(&self) -> usize {
        16 + self.ops.iter().map(WireSize::wire_size).sum::<usize>()
    }
}

/// The server's reply to a [`RequestBatch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchReply {
    /// Every operation was executed; one response per request, in order.
    Executed {
        /// Sequence number of the batch being answered.
        seq: u64,
        /// Per-request results.
        results: Vec<KvResponse>,
    },
    /// The batch's view did not match the server's current view.  The client
    /// must refresh its ownership mappings and re-issue the operations.
    Rejected {
        /// Sequence number of the rejected batch.
        seq: u64,
        /// The server's current view number.
        server_view: u64,
    },
}

impl BatchReply {
    /// The sequence number this reply refers to.
    pub fn seq(&self) -> u64 {
        match self {
            BatchReply::Executed { seq, .. } | BatchReply::Rejected { seq, .. } => *seq,
        }
    }
}

impl WireSize for BatchReply {
    fn wire_size(&self) -> usize {
        match self {
            BatchReply::Executed { results, .. } => {
                16 + results.iter().map(WireSize::wire_size).sum::<usize>()
            }
            BatchReply::Rejected { .. } => 24,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_wire_sizes_scale_with_payload() {
        let small = KvRequest::Upsert {
            key: 1,
            value: vec![0; 8],
        };
        let big = KvRequest::Upsert {
            key: 1,
            value: vec![0; 256],
        };
        assert!(big.wire_size() > small.wire_size());
        assert_eq!(KvRequest::Read { key: 1 }.wire_size(), 12);
    }

    #[test]
    fn batch_wire_size_sums_requests() {
        let batch = RequestBatch {
            view: 1,
            seq: 9,
            ops: vec![
                KvRequest::Read { key: 1 },
                KvRequest::RmwAdd { key: 2, delta: 1 },
            ],
        };
        assert_eq!(batch.wire_size(), 16 + 12 + 20);
    }

    #[test]
    fn reply_seq_matches_variant() {
        let e = BatchReply::Executed {
            seq: 3,
            results: vec![],
        };
        let r = BatchReply::Rejected {
            seq: 4,
            server_view: 7,
        };
        assert_eq!(e.seq(), 3);
        assert_eq!(r.seq(), 4);
    }

    #[test]
    fn request_key_accessor() {
        assert_eq!(KvRequest::Delete { key: 42 }.key(), 42);
        assert_eq!(KvRequest::RmwAdd { key: 7, delta: 3 }.key(), 7);
    }

    #[test]
    fn batches_are_cloneable_and_comparable() {
        let batch = RequestBatch {
            view: 2,
            seq: 5,
            ops: vec![KvRequest::Upsert {
                key: 1,
                value: vec![1, 2, 3],
            }],
        };
        let copy = batch.clone();
        assert_eq!(batch, copy);
        assert_eq!(copy.ops[0].key(), 1);
    }
}
