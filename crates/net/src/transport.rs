//! The transport abstraction: pluggable fabrics behind one session type.
//!
//! A [`Transport`] opens [`KvLink`]s — bidirectional, non-blocking,
//! batch-oriented links from one client thread to one server dispatch
//! thread.  [`ClientSession`](crate::ClientSession) is written purely
//! against `dyn KvLink`, so the same pipelined-batch machinery runs over:
//!
//! * the in-process [`SimNetwork`] fabric (charging per-message CPU costs
//!   from a [`NetworkProfile`](crate::NetworkProfile)), and
//! * real TCP sockets (`TcpTransport` in the `shadowfax-rpc` crate, which
//!   frames batches with the length-prefixed wire codec).
//!
//! Addresses are strings.  The simulated fabric uses bare fabric addresses
//! (`"sv0/t3"`); the TCP transport prefixes a socket address
//! (`"127.0.0.1:4870/sv0/t3"`) and forwards the fabric part in its HELLO
//! frame so the serving process can bind the connection to a dispatch
//! thread.

use crate::error::TransportError;
use crate::message::{BatchReply, RequestBatch};
use crate::sim::{Connection, SimNetwork};

/// One end of a client-to-server link carrying request batches out and
/// batch replies back.  All methods are non-blocking; implementations are
/// internally synchronized so a link can be driven from a session while
/// diagnostics threads read its state.
pub trait KvLink: Send {
    /// Sends one request batch toward the server.
    fn send_batch(&self, batch: RequestBatch) -> Result<(), TransportError>;

    /// Receives one reply, if one is available, without blocking.
    fn try_recv_reply(&self) -> Result<Option<BatchReply>, TransportError>;

    /// `true` while the link can still carry traffic.
    fn is_open(&self) -> bool;

    /// A human-readable description of the remote endpoint.
    fn peer_label(&self) -> String {
        "<unknown peer>".to_string()
    }
}

/// A client-side transport: a factory for [`KvLink`]s.
///
/// Implementations: [`SimNetwork`] (in-process fabric) and
/// `shadowfax_rpc::TcpTransport` (real sockets).
pub trait Transport: Send + Sync {
    /// Opens a link to the server dispatch thread at `addr`.
    fn connect_link(&self, addr: &str) -> Result<Box<dyn KvLink>, TransportError>;

    /// A short name for diagnostics ("sim", "tcp").
    fn transport_name(&self) -> &'static str;
}

/// A failed migration send, carrying the undelivered message back when the
/// transport could recover it, so record batches can be retried or re-routed
/// instead of silently lost.
#[derive(Debug)]
pub struct MigrationSendError<M> {
    /// What went wrong.
    pub error: TransportError,
    /// The undelivered message (`None` if the transport consumed it).
    pub msg: Option<M>,
}

/// One end of a server-to-server migration connection carrying symmetric
/// messages of type `M` (the core crate instantiates `M` with its migration
/// message enum).
///
/// This is the migration data plane's analogue of [`KvLink`]: all methods are
/// non-blocking, implementations are internally synchronized, and both the
/// in-process fabric ([`Connection<M, M>`]) and real sockets
/// (`shadowfax_rpc::TcpMigrationLink`) satisfy it, so the migration state
/// machines in the core crate never know which transport is underneath.
pub trait MigrationLink<M>: Send {
    /// Sends one migration message toward the peer.  On failure the message
    /// is handed back in the error whenever possible.
    fn send_msg(&self, msg: M) -> Result<(), MigrationSendError<M>>;

    /// Receives one migration message, if one is available, without blocking.
    fn try_recv_msg(&self) -> Result<Option<M>, TransportError>;

    /// `true` while the link can still carry traffic.
    fn is_open(&self) -> bool;

    /// A human-readable description of the remote endpoint.
    fn peer_label(&self) -> String {
        "<unknown peer>".to_string()
    }
}

impl<M: crate::message::WireSize + Send + 'static> MigrationLink<M> for Connection<M, M> {
    fn send_msg(&self, msg: M) -> Result<(), MigrationSendError<M>> {
        self.try_send(msg).map_err(|msg| MigrationSendError {
            error: TransportError::PeerClosed,
            msg: Some(msg),
        })
    }

    fn try_recv_msg(&self) -> Result<Option<M>, TransportError> {
        // The sim fabric cannot fail mid-stream; a dropped peer simply stops
        // producing messages, which `is_open` exposes.
        Ok(self.try_recv())
    }

    fn is_open(&self) -> bool {
        !self.peer_closed()
    }

    fn peer_label(&self) -> String {
        format!("sim:{}", self.profile().name)
    }
}

impl KvLink for Connection<RequestBatch, BatchReply> {
    fn send_batch(&self, batch: RequestBatch) -> Result<(), TransportError> {
        if self.send(batch) {
            Ok(())
        } else {
            Err(TransportError::PeerClosed)
        }
    }

    fn try_recv_reply(&self) -> Result<Option<BatchReply>, TransportError> {
        // The sim fabric cannot fail mid-stream; a dropped peer simply stops
        // producing replies, which `is_open` exposes.
        Ok(self.try_recv())
    }

    fn is_open(&self) -> bool {
        !self.peer_closed()
    }

    fn peer_label(&self) -> String {
        format!("sim:{}", self.profile().name)
    }
}

impl Transport for SimNetwork<RequestBatch, BatchReply> {
    fn connect_link(&self, addr: &str) -> Result<Box<dyn KvLink>, TransportError> {
        match self.connect(addr) {
            Some(conn) => Ok(Box::new(conn)),
            None => Err(TransportError::ConnectionRefused {
                addr: addr.to_string(),
            }),
        }
    }

    fn transport_name(&self) -> &'static str {
        "sim"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::NetworkProfile;
    use std::sync::Arc;

    type Net = SimNetwork<RequestBatch, BatchReply>;

    #[test]
    fn sim_network_implements_transport() {
        let net: Arc<Net> = SimNetwork::new(NetworkProfile::instant());
        let listener = net.listen("sv0/t0");
        let link = net.connect_link("sv0/t0").expect("listener registered");
        assert_eq!(net.transport_name(), "sim");
        assert!(link.is_open());

        let batch = RequestBatch {
            view: 1,
            seq: 7,
            ops: vec![],
        };
        link.send_batch(batch).unwrap();
        let server = listener.try_accept().unwrap();
        assert_eq!(server.drain().len(), 1);

        server.send(BatchReply::Rejected {
            seq: 7,
            server_view: 2,
        });
        let reply = link.try_recv_reply().unwrap().unwrap();
        assert_eq!(reply.seq(), 7);
        assert!(link.try_recv_reply().unwrap().is_none());
    }

    #[test]
    fn connect_link_to_unknown_address_is_typed() {
        let net: Arc<Net> = SimNetwork::new(NetworkProfile::instant());
        match net.connect_link("nowhere") {
            Err(TransportError::ConnectionRefused { addr }) => assert_eq!(addr, "nowhere"),
            Err(other) => panic!("expected ConnectionRefused, got {other:?}"),
            Ok(_) => panic!("expected ConnectionRefused, got a link"),
        }
    }

    #[test]
    fn dropped_peer_closes_link() {
        let net: Arc<Net> = SimNetwork::new(NetworkProfile::instant());
        let listener = net.listen("sv0/t0");
        let link = net.connect_link("sv0/t0").unwrap();
        let server = listener.try_accept().unwrap();
        drop(server);
        assert!(!link.is_open());
        let batch = RequestBatch {
            view: 1,
            seq: 1,
            ops: vec![],
        };
        assert_eq!(link.send_batch(batch), Err(TransportError::PeerClosed));
    }
}
