//! A minimal readiness-driven reactor over Linux `epoll`.
//!
//! The serving front ends (the RPC server's I/O threads, the tier
//! daemon's event loop) need exactly four things from the OS: register a
//! socket for readiness, wait for events without burning CPU, flush
//! writes when the peer drains its buffer, and be woken from another
//! thread.  This module provides them with direct `extern "C"` syscall
//! bindings — no `mio`, no `libc` crate (this environment has no registry
//! access; the workspace's `shims/` crates follow the same pattern) — so
//! the event loop costs nothing per *idle* connection: a process holding
//! 100k quiet sockets sits blocked in `epoll_wait`.
//!
//! * [`Reactor`] — an `epoll` instance plus an `eventfd` wakeup channel.
//! * [`Interest`] — read/write readiness interest, registered
//!   edge-triggered (`EPOLLET`): the kernel reports each readiness
//!   *transition* once, so callers must drain sockets to `WouldBlock`.
//! * [`Token`] — the caller-chosen 63-bit id attached to a registration
//!   and handed back on each [`Event`].
//! * [`Reactor::wake`] — cross-thread injection: makes a concurrent (or
//!   the next) [`Reactor::poll`] return immediately with its `woken` flag
//!   set.  Used to hand new connections to an I/O thread and to interrupt
//!   blocked loops at shutdown.
//!
//! [`raise_nofile_limit`] lives here too: a front end sized for tens of
//! thousands of sockets is pointless under the default 1024-fd soft
//! limit, so the server binaries raise the soft limit to the hard limit
//! at startup.

use std::io;
use std::os::raw::{c_int, c_uint, c_void};
use std::os::unix::io::RawFd;
use std::time::Duration;

// Direct syscall bindings.  These symbols come from the C runtime the
// Rust standard library already links against on Linux.
extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
    fn getrlimit(resource: c_int, rlim: *mut Rlimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
}

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
const EPOLLET: u32 = 1 << 31;

const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

const RLIMIT_NOFILE: c_int = 7;

/// `struct epoll_event`.  Packed on x86, naturally aligned elsewhere —
/// the kernel ABI, not a choice.
#[repr(C)]
#[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

#[repr(C)]
struct Rlimit {
    cur: u64,
    max: u64,
}

/// The token the `epoll` registration for the wakeup `eventfd` carries;
/// reserved, never surfaced as an [`Event`].
const WAKE_DATA: u64 = u64::MAX;

/// A caller-chosen identifier attached to a registered file descriptor
/// and echoed back on every [`Event`] for it.  `u64::MAX` is reserved
/// for the reactor's internal wakeup channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token(pub u64);

/// Which readiness transitions a registration subscribes to.  All
/// registrations are edge-triggered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Report when the socket becomes readable (or the peer closes).
    pub readable: bool,
    /// Report when the socket becomes writable again.
    pub writable: bool,
}

impl Interest {
    /// Read-readiness only (the steady state of a served connection).
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };

    /// Read- and write-readiness (a connection with buffered output
    /// waiting for the peer to drain its socket).
    pub const READABLE_WRITABLE: Interest = Interest {
        readable: true,
        writable: true,
    };

    fn bits(self) -> u32 {
        let mut bits = EPOLLET | EPOLLRDHUP;
        if self.readable {
            bits |= EPOLLIN;
        }
        if self.writable {
            bits |= EPOLLOUT;
        }
        bits
    }
}

/// One readiness transition reported by [`Reactor::poll`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the file descriptor was registered with.
    pub token: Token,
    /// The socket has bytes (or an EOF) to read.
    pub readable: bool,
    /// The socket can accept writes again.
    pub writable: bool,
    /// The kernel reported an error or hangup; the connection is over
    /// (a final read still drains anything buffered).
    pub error: bool,
}

/// An `epoll` instance plus an `eventfd` wakeup channel.
///
/// Shareable across threads (`register`/`wake` from anywhere); `poll` is
/// meant to be driven by one loop thread.
pub struct Reactor {
    epfd: RawFd,
    wakefd: RawFd,
}

// Both fds are plain kernel handles; every operation on them is
// thread-safe at the syscall level.
unsafe impl Send for Reactor {}
unsafe impl Sync for Reactor {}

impl std::fmt::Debug for Reactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reactor")
            .field("epfd", &self.epfd)
            .field("wakefd", &self.wakefd)
            .finish()
    }
}

fn syscall_result(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

impl Reactor {
    /// Creates the epoll instance and its wakeup `eventfd`.
    pub fn new() -> io::Result<Reactor> {
        let epfd = syscall_result(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        let wakefd = match syscall_result(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) }) {
            Ok(fd) => fd,
            Err(e) => {
                unsafe { close(epfd) };
                return Err(e);
            }
        };
        let reactor = Reactor { epfd, wakefd };
        // The wakeup channel is level-triggered on purpose: a wake posted
        // between polls must still be visible to the next poll.
        let mut ev = EpollEvent {
            events: EPOLLIN,
            data: WAKE_DATA,
        };
        syscall_result(unsafe { epoll_ctl(epfd, EPOLL_CTL_ADD, wakefd, &mut ev) })?;
        Ok(reactor)
    }

    fn ctl(&self, op: c_int, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        debug_assert_ne!(token.0, WAKE_DATA, "token u64::MAX is reserved");
        let mut ev = EpollEvent {
            events: interest.bits(),
            data: token.0,
        };
        syscall_result(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) }).map(|_| ())
    }

    /// Registers `fd` (edge-triggered) under `token`.
    pub fn register(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Changes the interest set of an already registered `fd`.
    pub fn reregister(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Removes `fd`'s registration.  Closing a registered fd removes it
    /// implicitly; this is for keeping a long-lived fd without events.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        let mut ev = EpollEvent { events: 0, data: 0 };
        syscall_result(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) }).map(|_| ())
    }

    /// Makes a concurrent (or the next) [`Reactor::poll`] return
    /// immediately with its `woken` flag set.  Callable from any thread;
    /// wakes coalesce.
    pub fn wake(&self) {
        let one: u64 = 1;
        // A full eventfd counter (EAGAIN) already guarantees the next
        // poll returns immediately; nothing to handle.
        unsafe { write(self.wakefd, (&one as *const u64).cast(), 8) };
    }

    /// Waits for readiness transitions, appending them to `events`
    /// (cleared first).  `None` blocks until an event or a wake;
    /// sub-millisecond timeouts round up to 1ms (use `Some(ZERO)` for a
    /// non-blocking harvest).  Returns whether [`Reactor::wake`] fired.
    pub fn poll(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<bool> {
        events.clear();
        let timeout_ms: c_int = match timeout {
            None => -1,
            Some(d) => {
                let micros = d.as_micros();
                micros.div_ceil(1000).min(i32::MAX as u128) as c_int
            }
        };
        const MAX_EVENTS: usize = 1024;
        let mut raw: [EpollEvent; MAX_EVENTS] = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
        let n = loop {
            let ret =
                unsafe { epoll_wait(self.epfd, raw.as_mut_ptr(), MAX_EVENTS as c_int, timeout_ms) };
            if ret >= 0 {
                break ret as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        let mut woken = false;
        for ev in raw.iter().take(n) {
            // Copy out of the (possibly packed) ABI struct before use.
            let (bits, data) = (ev.events, ev.data);
            if data == WAKE_DATA {
                woken = true;
                self.drain_wake();
                continue;
            }
            events.push(Event {
                token: Token(data),
                readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                writable: bits & EPOLLOUT != 0,
                error: bits & (EPOLLERR | EPOLLHUP) != 0,
            });
        }
        Ok(woken)
    }

    fn drain_wake(&self) {
        let mut counter: u64 = 0;
        unsafe { read(self.wakefd, (&mut counter as *mut u64).cast(), 8) };
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        unsafe {
            close(self.wakefd);
            close(self.epfd);
        }
    }
}

/// Raises this process's soft open-file limit to its hard limit and
/// returns the resulting soft limit.  A readiness-driven front end is
/// sized for tens of thousands of sockets; the default 1024-fd soft
/// limit would cap it long before the reactor breaks a sweat.
pub fn raise_nofile_limit() -> io::Result<u64> {
    let mut lim = Rlimit { cur: 0, max: 0 };
    syscall_result(unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) })?;
    if lim.cur < lim.max {
        let raised = Rlimit {
            cur: lim.max,
            max: lim.max,
        };
        if unsafe { setrlimit(RLIMIT_NOFILE, &raised) } == 0 {
            lim.cur = lim.max;
        }
    }
    Ok(lim.cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::Instant;

    #[test]
    fn listener_readiness_fires_on_connect() {
        let reactor = Reactor::new().expect("reactor");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.set_nonblocking(true).expect("nonblocking");
        reactor
            .register(listener.as_raw_fd(), Token(7), Interest::READABLE)
            .expect("register");

        let mut events = Vec::new();
        // Nothing pending: a short poll times out with no events.
        let woken = reactor
            .poll(&mut events, Some(Duration::from_millis(10)))
            .expect("poll");
        assert!(!woken);
        assert!(events.is_empty());

        let _client = TcpStream::connect(listener.local_addr().unwrap()).expect("connect");
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            reactor
                .poll(&mut events, Some(Duration::from_millis(50)))
                .expect("poll");
            if !events.is_empty() {
                break;
            }
            assert!(Instant::now() < deadline, "no readiness for a connect");
        }
        assert_eq!(events[0].token, Token(7));
        assert!(events[0].readable);
    }

    #[test]
    fn edge_triggered_read_reports_each_arrival_once() {
        let reactor = Reactor::new().expect("reactor");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).expect("connect");
        let (served, _) = listener.accept().expect("accept");
        served.set_nonblocking(true).expect("nonblocking");
        reactor
            .register(served.as_raw_fd(), Token(1), Interest::READABLE)
            .expect("register");

        client.write_all(b"ping").expect("write");
        let mut events = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            reactor
                .poll(&mut events, Some(Duration::from_millis(50)))
                .expect("poll");
            if !events.is_empty() {
                break;
            }
            assert!(Instant::now() < deadline, "no readiness for buffered bytes");
        }
        assert!(events[0].readable);
        // Without draining the socket, the edge does not re-fire.
        reactor
            .poll(&mut events, Some(Duration::from_millis(50)))
            .expect("poll");
        assert!(events.is_empty(), "edge-triggered event fired twice");
        // Drain, write again: a fresh edge arrives.
        let mut buf = [0u8; 16];
        let mut served_read = &served;
        assert_eq!(served_read.read(&mut buf).expect("drain"), 4);
        client.write_all(b"pong").expect("write again");
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            reactor
                .poll(&mut events, Some(Duration::from_millis(50)))
                .expect("poll");
            if !events.is_empty() {
                break;
            }
            assert!(Instant::now() < deadline, "no fresh edge after drain");
        }
    }

    #[test]
    fn wake_interrupts_a_blocked_poll() {
        let reactor = std::sync::Arc::new(Reactor::new().expect("reactor"));
        let waker = std::sync::Arc::clone(&reactor);
        let waited = std::thread::spawn(move || {
            let mut events = Vec::new();
            let start = Instant::now();
            let woken = waker.poll(&mut events, None).expect("blocked poll");
            (woken, start.elapsed())
        });
        std::thread::sleep(Duration::from_millis(100));
        reactor.wake();
        let (woken, elapsed) = waited.join().expect("join poller");
        assert!(woken, "wake flag not reported");
        assert!(elapsed < Duration::from_secs(5), "wake did not interrupt");
        // A wake with no poll in flight is caught by the next poll.
        reactor.wake();
        let mut events = Vec::new();
        let woken = reactor
            .poll(&mut events, Some(Duration::from_secs(5)))
            .expect("poll");
        assert!(woken, "pending wake lost between polls");
    }

    #[test]
    fn writable_edge_fires_when_the_peer_drains() {
        let reactor = Reactor::new().expect("reactor");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).expect("connect");
        let (served, _) = listener.accept().expect("accept");
        served.set_nonblocking(true).expect("nonblocking");

        // Fill the kernel send buffer until WouldBlock.
        let chunk = [0u8; 64 * 1024];
        let mut served_write = &served;
        loop {
            match served_write.write(&chunk) {
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) => panic!("fill write failed: {e}"),
            }
        }
        reactor
            .register(served.as_raw_fd(), Token(3), Interest::READABLE_WRITABLE)
            .expect("register");

        // Drain the peer: a writable edge must arrive.
        let drainer = std::thread::spawn(move || {
            let mut sink = [0u8; 64 * 1024];
            client
                .set_read_timeout(Some(Duration::from_millis(200)))
                .expect("read timeout");
            loop {
                match client.read(&mut sink) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {}
                }
            }
        });
        let mut events = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut saw_writable = false;
        while Instant::now() < deadline && !saw_writable {
            reactor
                .poll(&mut events, Some(Duration::from_millis(50)))
                .expect("poll");
            saw_writable = events.iter().any(|e| e.writable);
        }
        drop(served);
        drainer.join().expect("join drainer");
        assert!(saw_writable, "no writable edge after the peer drained");
    }

    #[test]
    fn nofile_limit_is_at_least_the_default() {
        let limit = raise_nofile_limit().expect("rlimit");
        assert!(limit >= 1024, "soft nofile limit {limit} below the default");
    }
}
