//! Per-transport CPU cost and delay profiles.
//!
//! The paper's key networking observation (§3.1.2, §4.2–4.3) is that the CPU
//! cost of packet processing — not link bandwidth — determines how large
//! request batches must be to saturate a server, and hence what the median
//! latency is.  Hardware-accelerated TCP halves that CPU cost relative to
//! plain TCP; RDMA (Infrc) nearly eliminates it.
//!
//! A [`NetworkProfile`] captures those costs: fixed nanoseconds of CPU per
//! batch, nanoseconds of CPU per byte, and a propagation delay.  Live
//! experiments *spend* the CPU cost (busy-spinning, since it models work the
//! CPU would be doing in the kernel/NIC driver); the analytical benchmark
//! mode plugs the same numbers into closed-form saturation formulas.

use std::time::Duration;

/// CPU and delay costs of one transport option.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkProfile {
    /// Human-readable name (matches Table 2 row labels).
    pub name: &'static str,
    /// CPU nanoseconds consumed per batch on the send path (syscall, driver,
    /// protocol bookkeeping).
    pub send_batch_ns: u64,
    /// CPU nanoseconds per byte on the send path (copies, checksums).
    pub send_byte_ns: f64,
    /// CPU nanoseconds consumed per batch on the receive path.
    pub recv_batch_ns: u64,
    /// CPU nanoseconds per byte on the receive path.
    pub recv_byte_ns: f64,
    /// One-way propagation delay (fabric latency, independent of CPU).
    pub propagation: Duration,
    /// Whether live transports actually burn the CPU cost (busy-wait) or only
    /// account for it.  Tests use `false`.
    pub spend_cpu: bool,
}

impl NetworkProfile {
    /// Zero-cost profile for unit tests and protocol-behaviour experiments
    /// where transport CPU cost is not the quantity under study.
    pub const fn instant() -> Self {
        NetworkProfile {
            name: "instant",
            send_batch_ns: 0,
            send_byte_ns: 0.0,
            recv_batch_ns: 0,
            recv_byte_ns: 0.0,
            propagation: Duration::ZERO,
            spend_cpu: false,
        }
    }

    /// Linux TCP with SmartNIC acceleration (the paper's default transport;
    /// Table 2 row "TCP").
    pub const fn tcp_accelerated() -> Self {
        NetworkProfile {
            name: "TCP (accelerated)",
            send_batch_ns: 4_000,
            send_byte_ns: 0.45,
            recv_batch_ns: 4_000,
            recv_byte_ns: 0.45,
            propagation: Duration::from_micros(25),
            spend_cpu: true,
        }
    }

    /// Linux TCP without acceleration (Table 2 row "w/o Accel").  With the
    /// whole kernel TCP stack on the vCPU, per-byte processing (copies,
    /// checksums, segmentation) dominates: the paper measures the same
    /// workload dropping from 130 Mops/s to 75 Mops/s at 32 KB batches, which
    /// corresponds to roughly an extra 360 ns of CPU per 29-byte operation —
    /// i.e. ~12 ns/byte of un-offloaded protocol processing.
    pub const fn tcp_no_accel() -> Self {
        NetworkProfile {
            name: "TCP (no accel)",
            send_batch_ns: 20_000,
            send_byte_ns: 12.0,
            recv_batch_ns: 20_000,
            recv_byte_ns: 12.0,
            propagation: Duration::from_micros(25),
            spend_cpu: true,
        }
    }

    /// Two-sided RDMA on HPC instances (Table 2 row "Infrc"): the stack is in
    /// hardware, so per-batch and per-byte CPU costs are tiny and the fabric
    /// delay is a few microseconds.
    pub const fn infrc() -> Self {
        NetworkProfile {
            name: "Infrc (RDMA)",
            send_batch_ns: 400,
            send_byte_ns: 0.02,
            recv_batch_ns: 400,
            recv_byte_ns: 0.02,
            propagation: Duration::from_micros(3),
            spend_cpu: true,
        }
    }

    /// TCP over IPoIB on the RDMA instances (Table 2 row "TCP-IPoIB"):
    /// kernel TCP costs, but faster vCPUs and fabric.
    pub const fn tcp_ipoib() -> Self {
        NetworkProfile {
            name: "TCP-IPoIB",
            send_batch_ns: 3_000,
            send_byte_ns: 0.35,
            recv_batch_ns: 3_000,
            recv_byte_ns: 0.35,
            propagation: Duration::from_micros(8),
            spend_cpu: true,
        }
    }

    /// All four Table 2 transports, in the paper's row order.
    pub fn table2_rows() -> [NetworkProfile; 4] {
        [
            Self::tcp_accelerated(),
            Self::tcp_no_accel(),
            Self::infrc(),
            Self::tcp_ipoib(),
        ]
    }

    /// CPU time charged on the send path for a message of `bytes`.
    pub fn send_cost(&self, bytes: usize) -> Duration {
        Duration::from_nanos(self.send_batch_ns + (self.send_byte_ns * bytes as f64) as u64)
    }

    /// CPU time charged on the receive path for a message of `bytes`.
    pub fn recv_cost(&self, bytes: usize) -> Duration {
        Duration::from_nanos(self.recv_batch_ns + (self.recv_byte_ns * bytes as f64) as u64)
    }

    /// Returns a copy that only accounts for CPU cost instead of spending it.
    pub fn accounting_only(mut self) -> Self {
        self.spend_cpu = false;
        self
    }

    /// Busy-spins for `cost` if this profile spends CPU.  Returns the cost so
    /// callers can also account for it.
    pub fn spend(&self, cost: Duration) -> Duration {
        if self.spend_cpu && !cost.is_zero() {
            let start = std::time::Instant::now();
            while start.elapsed() < cost {
                std::hint::spin_loop();
            }
        }
        cost
    }
}

impl Default for NetworkProfile {
    fn default() -> Self {
        Self::tcp_accelerated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accelerated_tcp_is_cheaper_than_plain_tcp() {
        let accel = NetworkProfile::tcp_accelerated();
        let plain = NetworkProfile::tcp_no_accel();
        let batch = 32 * 1024;
        assert!(accel.send_cost(batch) < plain.send_cost(batch));
        assert!(accel.recv_cost(batch) < plain.recv_cost(batch));
    }

    #[test]
    fn rdma_is_cheapest_and_fastest() {
        let rows = NetworkProfile::table2_rows();
        let infrc = NetworkProfile::infrc();
        for p in rows.iter().filter(|p| p.name != infrc.name) {
            assert!(infrc.send_cost(1024) < p.send_cost(1024));
            assert!(infrc.propagation <= p.propagation);
        }
    }

    #[test]
    fn instant_profile_costs_nothing() {
        let p = NetworkProfile::instant();
        assert_eq!(p.send_cost(1 << 20), Duration::ZERO);
        assert_eq!(p.spend(Duration::ZERO), Duration::ZERO);
    }

    #[test]
    fn accounting_only_does_not_spin() {
        let p = NetworkProfile::tcp_no_accel().accounting_only();
        let start = std::time::Instant::now();
        let cost = p.spend(p.send_cost(1 << 20));
        assert!(start.elapsed() < Duration::from_millis(1));
        assert!(cost > Duration::ZERO);
    }

    #[test]
    fn spend_cpu_actually_spins() {
        let p = NetworkProfile {
            name: "test",
            send_batch_ns: 0,
            send_byte_ns: 0.0,
            recv_batch_ns: 0,
            recv_byte_ns: 0.0,
            propagation: Duration::ZERO,
            spend_cpu: true,
        };
        let start = std::time::Instant::now();
        p.spend(Duration::from_micros(200));
        assert!(start.elapsed() >= Duration::from_micros(200));
    }
}
