//! Peer liveness for long-lived control links (heartbeats with a miss
//! budget).
//!
//! A migration couples two servers for seconds: the source must notice a
//! target that died mid-transfer (and vice versa) or the migration wedges
//! forever with its recovery dependency pending at the metadata store
//! (paper §3.3.1).  Two signals decide that a peer is dead:
//!
//! * **explicit transport death** — a TCP link reports `PeerClosed`/EOF or
//!   an I/O error, or a sim connection's peer endpoint was dropped.  The
//!   observer calls [`PeerLiveness::declare_dead`] immediately.
//! * **heartbeat silence** — the link looks open but nothing has arrived
//!   for [`LivenessConfig::miss_budget`] heartbeat intervals (a hung peer,
//!   a half-open connection).  The prober sends a heartbeat every
//!   [`LivenessConfig::heartbeat_interval`] and counts the silence.
//!
//! [`PeerLiveness`] is transport-agnostic bookkeeping: the layers above
//! (the migration state machines in the core crate) decide *what* to send
//! as a heartbeat and what to do when the peer is declared dead.

use std::time::{Duration, Instant};

/// Tuning for a [`PeerLiveness`] monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LivenessConfig {
    /// How often the prober sends a heartbeat on the monitored link.
    pub heartbeat_interval: Duration,
    /// How many consecutive silent intervals are tolerated before the peer
    /// is declared dead.
    pub miss_budget: u32,
}

impl Default for LivenessConfig {
    fn default() -> Self {
        // Generous enough that a CI scheduler hiccup on a healthy peer never
        // trips it (explicit transport death catches real crashes much
        // faster); small enough that a hung peer is caught in seconds.
        LivenessConfig {
            heartbeat_interval: Duration::from_millis(200),
            miss_budget: 15,
        }
    }
}

impl LivenessConfig {
    /// The silence after which the peer is declared dead.
    pub fn deadline(&self) -> Duration {
        self.heartbeat_interval * self.miss_budget.max(1)
    }
}

/// Liveness bookkeeping for one peer on one link.
///
/// Not internally synchronized: callers hold it under whatever lock guards
/// the link itself.
#[derive(Debug)]
pub struct PeerLiveness {
    config: LivenessConfig,
    last_recv: Instant,
    last_send: Instant,
    missed: u64,
    dead: Option<String>,
}

impl PeerLiveness {
    /// Starts monitoring now: the peer is considered fresh.
    pub fn new(config: LivenessConfig) -> Self {
        let now = Instant::now();
        PeerLiveness {
            config,
            last_recv: now,
            last_send: now,
            missed: 0,
            dead: None,
        }
    }

    /// The monitor's configuration.
    pub fn config(&self) -> LivenessConfig {
        self.config
    }

    /// Records that *any* message arrived from the peer (heartbeat replies
    /// and ordinary protocol traffic both count as proof of life).
    pub fn record_recv(&mut self) {
        self.last_recv = Instant::now();
    }

    /// `true` when it is time to send the next heartbeat; also advances the
    /// send clock and, if the peer has been silent for more than one
    /// interval, counts a miss.
    pub fn heartbeat_due(&mut self) -> bool {
        let now = Instant::now();
        if now.duration_since(self.last_send) < self.config.heartbeat_interval {
            return false;
        }
        if now.duration_since(self.last_recv) > self.config.heartbeat_interval {
            self.missed += 1;
        }
        self.last_send = now;
        true
    }

    /// Declares the peer dead from an explicit transport signal (EOF, I/O
    /// error, dropped endpoint).  Idempotent; the first reason wins.
    pub fn declare_dead(&mut self, reason: impl Into<String>) {
        if self.dead.is_none() {
            self.dead = Some(reason.into());
        }
    }

    /// Returns the death reason if the peer is dead — either declared
    /// explicitly, or silent past the miss budget.
    pub fn check_dead(&mut self) -> Option<String> {
        if let Some(reason) = &self.dead {
            return Some(reason.clone());
        }
        let silent = Instant::now().duration_since(self.last_recv);
        if silent > self.config.deadline() {
            let reason = format!(
                "peer silent for {silent:?} (budget: {} x {:?})",
                self.config.miss_budget, self.config.heartbeat_interval
            );
            self.dead = Some(reason.clone());
            return Some(reason);
        }
        None
    }

    /// Heartbeat intervals that elapsed without hearing from the peer.
    pub fn heartbeats_missed(&self) -> u64 {
        self.missed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Margins are coarse (tens of ms) so scheduler jitter on a loaded test
    /// machine cannot cross a boundary the assertion depends on.
    fn fast() -> LivenessConfig {
        LivenessConfig {
            heartbeat_interval: Duration::from_millis(50),
            miss_budget: 10,
        }
    }

    #[test]
    fn fresh_peer_is_alive_and_heartbeats_pace_the_interval() {
        let mut live = PeerLiveness::new(fast());
        assert!(live.check_dead().is_none());
        // Immediately after creation the send clock is fresh.
        assert!(!live.heartbeat_due());
        std::thread::sleep(Duration::from_millis(60));
        assert!(live.heartbeat_due());
        // The clock advanced; the next one is not due yet.
        assert!(!live.heartbeat_due());
    }

    #[test]
    fn silence_past_the_budget_is_death_and_receipt_resets_it() {
        // Deadline: 3 x 40ms = 120ms.
        let mut live = PeerLiveness::new(LivenessConfig {
            heartbeat_interval: Duration::from_millis(40),
            miss_budget: 3,
        });
        live.record_recv();
        // A fresh receipt is always alive, regardless of scheduling.
        assert!(live.check_dead().is_none());
        std::thread::sleep(Duration::from_millis(200));
        // 200ms silent > 120ms deadline: dead, with an informative reason.
        let reason = live.check_dead().expect("deadline exceeded");
        assert!(reason.contains("silent"), "{reason}");
        // Death is sticky even if a late message shows up.
        live.record_recv();
        assert!(live.check_dead().is_some());
    }

    #[test]
    fn explicit_death_wins_immediately_and_is_idempotent() {
        let mut live = PeerLiveness::new(fast());
        live.declare_dead("connection reset");
        live.declare_dead("later, ignored");
        assert_eq!(live.check_dead().as_deref(), Some("connection reset"));
    }

    #[test]
    fn misses_are_counted_while_the_peer_is_silent() {
        let mut live = PeerLiveness::new(fast());
        for _ in 0..3 {
            std::thread::sleep(Duration::from_millis(60));
            let _ = live.heartbeat_due();
        }
        assert!(
            live.heartbeats_missed() >= 2,
            "missed: {}",
            live.heartbeats_missed()
        );
        // A fresh receipt at probe time stops the counting.
        std::thread::sleep(Duration::from_millis(60));
        live.record_recv();
        let before = live.heartbeats_missed();
        let _ = live.heartbeat_due();
        assert_eq!(live.heartbeats_missed(), before);
    }

    #[test]
    fn default_config_deadline_is_the_product() {
        let c = LivenessConfig::default();
        assert_eq!(c.deadline(), c.heartbeat_interval * c.miss_budget);
    }
}
