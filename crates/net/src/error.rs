//! Typed errors for the networking substrate.
//!
//! Session and transport failures used to be signalled with ad-hoc values
//! (`bool` returns from sends, bare `Option<u64>` for stale views).  The RPC
//! layer needs to put these on the wire, so they are now proper error enums
//! with a stable [`StatusCode`] mapping: `shadowfax-rpc` encodes a
//! [`SessionError`]/[`TransportError`] as a one-byte status in its reply
//! frames and reconstructs the typed error on the client side.

use std::error::Error;
use std::fmt;

/// One-byte status codes used by wire protocols to carry typed errors.
///
/// The numeric values are part of the wire format — append new codes, never
/// renumber existing ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum StatusCode {
    /// The operation succeeded.
    Ok = 0,
    /// The batch's view number did not match the server's serving view.
    StaleView = 1,
    /// No server / listener exists at the requested address.
    UnknownAddress = 2,
    /// The peer endpoint is gone (socket closed, endpoint dropped).
    PeerClosed = 3,
    /// An OS-level I/O failure on a real socket.
    Io = 4,
    /// A frame failed structural validation (bad tag, trailing bytes, UTF-8).
    Malformed = 5,
    /// A frame exceeded the receiver's size limit.
    Oversized = 6,
    /// The server could not execute a control operation.
    ControlFailed = 7,
    /// The request referenced a log address beyond what the addressed log
    /// has ever covered (chain fetches against the shared tier).
    OutOfRange = 8,
}

impl StatusCode {
    /// Parses a wire byte back into a status code.
    pub fn from_u8(v: u8) -> Option<StatusCode> {
        Some(match v {
            0 => StatusCode::Ok,
            1 => StatusCode::StaleView,
            2 => StatusCode::UnknownAddress,
            3 => StatusCode::PeerClosed,
            4 => StatusCode::Io,
            5 => StatusCode::Malformed,
            6 => StatusCode::Oversized,
            7 => StatusCode::ControlFailed,
            8 => StatusCode::OutOfRange,
            _ => return None,
        })
    }

    /// The wire representation.
    pub fn as_u8(self) -> u8 {
        self as u8
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StatusCode::Ok => "ok",
            StatusCode::StaleView => "stale view",
            StatusCode::UnknownAddress => "unknown address",
            StatusCode::PeerClosed => "peer closed",
            StatusCode::Io => "i/o error",
            StatusCode::Malformed => "malformed frame",
            StatusCode::Oversized => "oversized frame",
            StatusCode::ControlFailed => "control operation failed",
            StatusCode::OutOfRange => "log address out of range",
        };
        f.write_str(s)
    }
}

/// Errors raised by a [`Transport`](crate::Transport) while opening links or
/// moving batches across them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// No listener / server is reachable at the address.
    ConnectionRefused {
        /// The address that was dialled.
        addr: String,
    },
    /// The peer endpoint has been closed or dropped.
    PeerClosed,
    /// An OS-level I/O failure (real sockets only).
    Io(String),
    /// The peer sent a frame that failed validation.
    Malformed(String),
    /// The peer sent a frame larger than this endpoint accepts.
    Oversized {
        /// Declared frame length.
        len: usize,
        /// This endpoint's limit.
        max: usize,
    },
}

impl TransportError {
    /// The wire status code for this error.
    pub fn status_code(&self) -> StatusCode {
        match self {
            TransportError::ConnectionRefused { .. } => StatusCode::UnknownAddress,
            TransportError::PeerClosed => StatusCode::PeerClosed,
            TransportError::Io(_) => StatusCode::Io,
            TransportError::Malformed(_) => StatusCode::Malformed,
            TransportError::Oversized { .. } => StatusCode::Oversized,
        }
    }
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::ConnectionRefused { addr } => {
                write!(f, "connection refused: no listener at {addr}")
            }
            TransportError::PeerClosed => f.write_str("peer endpoint closed"),
            TransportError::Io(msg) => write!(f, "i/o error: {msg}"),
            TransportError::Malformed(msg) => write!(f, "malformed frame: {msg}"),
            TransportError::Oversized { len, max } => {
                write!(
                    f,
                    "oversized frame: {len} bytes exceeds the {max}-byte limit"
                )
            }
        }
    }
}

impl Error for TransportError {}

/// Errors surfaced by a [`ClientSession`](crate::ClientSession).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// The server rejected a batch because the session's view is stale.  The
    /// client library must refresh ownership mappings and re-route the parked
    /// operations (paper §3.2).
    StaleView {
        /// The view the session stamped on the rejected batch.
        session_view: u64,
        /// The server's current view, reported in the rejection.
        server_view: u64,
    },
    /// The underlying link failed.
    Transport(TransportError),
}

impl SessionError {
    /// The wire status code for this error.
    pub fn status_code(&self) -> StatusCode {
        match self {
            SessionError::StaleView { .. } => StatusCode::StaleView,
            SessionError::Transport(t) => t.status_code(),
        }
    }
}

impl From<TransportError> for SessionError {
    fn from(e: TransportError) -> Self {
        SessionError::Transport(e)
    }
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::StaleView { session_view, server_view } => write!(
                f,
                "batch rejected: session view {session_view} is stale (server is at view {server_view})"
            ),
            SessionError::Transport(t) => write!(f, "transport failure: {t}"),
        }
    }
}

impl Error for SessionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SessionError::Transport(t) => Some(t),
            SessionError::StaleView { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_codes_roundtrip() {
        for code in [
            StatusCode::Ok,
            StatusCode::StaleView,
            StatusCode::UnknownAddress,
            StatusCode::PeerClosed,
            StatusCode::Io,
            StatusCode::Malformed,
            StatusCode::Oversized,
            StatusCode::ControlFailed,
            StatusCode::OutOfRange,
        ] {
            assert_eq!(StatusCode::from_u8(code.as_u8()), Some(code));
        }
        assert_eq!(StatusCode::from_u8(200), None);
    }

    #[test]
    fn errors_map_to_stable_codes() {
        assert_eq!(
            SessionError::StaleView {
                session_view: 1,
                server_view: 2
            }
            .status_code(),
            StatusCode::StaleView
        );
        assert_eq!(
            TransportError::ConnectionRefused {
                addr: "sv0/t0".into()
            }
            .status_code(),
            StatusCode::UnknownAddress
        );
        assert_eq!(
            SessionError::from(TransportError::PeerClosed).status_code(),
            StatusCode::PeerClosed
        );
    }

    #[test]
    fn display_is_informative() {
        let e = SessionError::StaleView {
            session_view: 3,
            server_view: 9,
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('9'), "{s}");
    }
}
