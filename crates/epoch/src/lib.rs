//! Epoch-based memory protection and asynchronous global cuts.
//!
//! This crate implements the synchronization substrate that both FASTER and
//! Shadowfax are built on (paper §2.1): a *LightEpoch*-style epoch manager.
//!
//! Threads that access shared, lock-free structures register with an
//! [`EpochManager`] and bracket every access with [`ThreadEpoch::protect`] /
//! the returned [`Guard`].  Internally the manager keeps a global epoch
//! counter and, for every registered thread, the epoch value that thread most
//! recently observed.  Memory (or any other resource) that was retired at
//! epoch `e` can be reclaimed once every registered thread has observed an
//! epoch greater than `e` — i.e. once `e` has become *safe*.
//!
//! Beyond memory safety, the same machinery provides the paper's central
//! coordination primitive: **asynchronous global cuts**.  A caller bumps the
//! global epoch and registers a *trigger action* that runs exactly once, as
//! soon as every thread has refreshed past the bump.  The set of per-thread
//! refresh points forms a cut across all threads' operation sequences without
//! ever stalling any of them.  FASTER's checkpointing, and Shadowfax's
//! ownership transfer and migration phases, are all expressed as sequences of
//! such cuts (see `shadowfax-faster` and the `shadowfax` core crate).
//!
//! # Example
//!
//! ```
//! use shadowfax_epoch::EpochManager;
//! use std::sync::Arc;
//! use std::sync::atomic::{AtomicBool, Ordering};
//!
//! let epoch = Arc::new(EpochManager::new());
//! let thread = epoch.register();
//!
//! // Protect an access to a shared structure.
//! {
//!     let _guard = thread.protect();
//!     // ... read or update lock-free state ...
//! }
//!
//! // Create a global cut: the flag flips only after every registered thread
//! // has refreshed past the bump.
//! let flag = Arc::new(AtomicBool::new(false));
//! let f = flag.clone();
//! epoch.bump_with_action(move || f.store(true, Ordering::SeqCst));
//! thread.refresh();            // this thread observes the new epoch
//! epoch.try_drain();           // actions whose cut is complete run here
//! assert!(flag.load(Ordering::SeqCst));
//! ```

#![warn(missing_docs)]

mod cut;
mod manager;
mod thread_id;

pub use cut::{CutParticipant, GlobalCut};
pub use manager::{EpochAction, EpochManager, Guard, ThreadEpoch, MAX_THREADS, UNPROTECTED};
pub use thread_id::ThreadIdAllocator;
