//! Explicit global-cut bookkeeping.
//!
//! [`EpochManager::bump_with_action`](crate::EpochManager::bump_with_action)
//! realizes a cut implicitly — the action runs once every thread has crossed
//! it.  Some protocols additionally need to *record* the per-thread positions
//! that made up the cut: Shadowfax's ownership transfer pushes the cut out to
//! client sessions, and its (future-work) client-assisted recovery replays
//! operations after the cut.  [`GlobalCut`] provides that bookkeeping: each
//! participating thread marks the position it chose (an operation sequence
//! number), and the cut is complete once every participant has marked.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Sentinel meaning "participant has not yet chosen its cut point".
const UNMARKED: u64 = u64::MAX;

/// A cut across `n` participants' operation sequences.
///
/// Each participant independently calls [`CutParticipant::mark`] with the
/// sequence number of the last operation it performed *before* the cut.  The
/// cut is complete once every participant has marked; the collected positions
/// then describe an unambiguous before/after boundary over all concurrent
/// operation streams (paper §2.1, Figure 3).
#[derive(Debug)]
pub struct GlobalCut {
    positions: Box<[AtomicU64]>,
    remaining: AtomicUsize,
}

impl GlobalCut {
    /// Creates a cut with `participants` slots and returns one handle per
    /// participant.
    pub fn new(participants: usize) -> (Arc<Self>, Vec<CutParticipant>) {
        let cut = Arc::new(Self {
            positions: (0..participants)
                .map(|_| AtomicU64::new(UNMARKED))
                .collect(),
            remaining: AtomicUsize::new(participants),
        });
        let handles = (0..participants)
            .map(|idx| CutParticipant {
                cut: Arc::clone(&cut),
                idx,
            })
            .collect();
        (cut, handles)
    }

    /// Number of participants that have not yet marked their position.
    pub fn remaining(&self) -> usize {
        self.remaining.load(Ordering::SeqCst)
    }

    /// `true` once every participant has marked.
    pub fn is_complete(&self) -> bool {
        self.remaining() == 0
    }

    /// Positions chosen by each participant, or `None` for participants that
    /// have not marked yet.
    pub fn positions(&self) -> Vec<Option<u64>> {
        self.positions
            .iter()
            .map(|p| {
                let v = p.load(Ordering::SeqCst);
                (v != UNMARKED).then_some(v)
            })
            .collect()
    }

    /// The completed cut as a vector of positions.
    ///
    /// # Panics
    ///
    /// Panics if the cut is not yet complete.
    pub fn completed_positions(&self) -> Vec<u64> {
        assert!(self.is_complete(), "global cut is not complete");
        self.positions
            .iter()
            .map(|p| p.load(Ordering::SeqCst))
            .collect()
    }

    fn mark(&self, idx: usize, position: u64) -> bool {
        assert_ne!(position, UNMARKED, "u64::MAX is reserved");
        let prev = self.positions[idx].swap(position, Ordering::SeqCst);
        if prev == UNMARKED {
            let left = self.remaining.fetch_sub(1, Ordering::SeqCst) - 1;
            left == 0
        } else {
            // Re-marking is idempotent with respect to completion.
            false
        }
    }
}

/// One participant's handle on a [`GlobalCut`].
#[derive(Debug, Clone)]
pub struct CutParticipant {
    cut: Arc<GlobalCut>,
    idx: usize,
}

impl CutParticipant {
    /// Records this participant's cut position.  Returns `true` if this call
    /// completed the cut (i.e. this was the last participant to mark).
    pub fn mark(&self, position: u64) -> bool {
        self.cut.mark(self.idx, position)
    }

    /// The participant's index within the cut.
    pub fn index(&self) -> usize {
        self.idx
    }

    /// The underlying cut, for observing completion.
    pub fn cut(&self) -> &Arc<GlobalCut> {
        &self.cut
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cut_completes_when_all_mark() {
        let (cut, parts) = GlobalCut::new(3);
        assert!(!cut.is_complete());
        assert!(!parts[0].mark(10));
        assert!(!parts[1].mark(20));
        assert!(!cut.is_complete());
        assert!(parts[2].mark(30));
        assert!(cut.is_complete());
        assert_eq!(cut.completed_positions(), vec![10, 20, 30]);
    }

    #[test]
    fn remark_does_not_double_complete() {
        let (cut, parts) = GlobalCut::new(2);
        assert!(!parts[0].mark(1));
        assert!(!parts[0].mark(2));
        assert_eq!(cut.remaining(), 1);
        assert!(parts[1].mark(3));
        assert_eq!(cut.positions(), vec![Some(2), Some(3)]);
    }

    #[test]
    fn zero_participant_cut_is_trivially_complete() {
        let (cut, parts) = GlobalCut::new(0);
        assert!(parts.is_empty());
        assert!(cut.is_complete());
        assert!(cut.completed_positions().is_empty());
    }

    #[test]
    #[should_panic(expected = "not complete")]
    fn completed_positions_panics_when_incomplete() {
        let (cut, _parts) = GlobalCut::new(1);
        let _ = cut.completed_positions();
    }

    #[test]
    fn concurrent_marks() {
        let (cut, parts) = GlobalCut::new(8);
        let handles: Vec<_> = parts
            .into_iter()
            .enumerate()
            .map(|(i, p)| std::thread::spawn(move || p.mark(i as u64 * 100)))
            .collect();
        let completions: usize = handles
            .into_iter()
            .map(|h| usize::from(h.join().unwrap()))
            .sum();
        assert_eq!(completions, 1, "exactly one mark call completes the cut");
        assert!(cut.is_complete());
    }
}
