//! The epoch manager: per-thread protection slots, a global epoch counter,
//! and a drain list of trigger actions.
//!
//! The design follows FASTER's `LightEpoch`:
//!
//! * a global monotonically increasing epoch counter,
//! * a fixed table of per-thread slots recording the epoch each registered
//!   thread most recently observed while protected,
//! * a drain list of `(trigger_epoch, action)` pairs.  An action becomes
//!   eligible once the *safe epoch* — the largest epoch every registered,
//!   protected thread has moved past — reaches its trigger epoch, and is then
//!   executed exactly once by whichever thread notices first.
//!
//! Bumping the epoch together with registering an action is the mechanism the
//! paper calls an **asynchronous global cut**: no thread is ever stalled, yet
//! the action is guaranteed to run only after every thread has crossed the
//! cut (refreshed its slot past the bump).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::utils::CachePadded;
use parking_lot::Mutex;

use crate::thread_id::ThreadIdAllocator;

/// Maximum number of threads that may be registered with one [`EpochManager`].
pub const MAX_THREADS: usize = 128;

/// Sentinel slot value meaning "this thread is not currently protected".
pub const UNPROTECTED: u64 = 0;

/// A deferred action registered with [`EpochManager::bump_with_action`].
pub type EpochAction = Box<dyn FnOnce() + Send + 'static>;

struct DrainItem {
    /// The action runs once `safe_epoch() >= trigger_epoch`.
    trigger_epoch: u64,
    action: EpochAction,
}

/// Epoch manager shared by every thread of a FASTER / Shadowfax instance.
///
/// See the crate-level documentation for the protocol.  The manager is cheap
/// to share behind an [`Arc`]; all hot-path operations (protect, refresh,
/// unprotect) are a single store plus, rarely, a drain check.
pub struct EpochManager {
    /// Global epoch. Starts at 1 so that `UNPROTECTED` (0) never collides with
    /// a real epoch value.
    current: CachePadded<AtomicU64>,
    /// Per-thread slots; `UNPROTECTED` or the epoch observed at protect time.
    table: Box<[CachePadded<AtomicU64>]>,
    /// Allocator for dense thread indices into `table`.
    ids: ThreadIdAllocator,
    /// Deferred trigger actions.
    drain_list: Mutex<Vec<DrainItem>>,
    /// Fast-path count of pending drain items (avoids taking the lock when 0).
    drain_count: AtomicUsize,
}

impl std::fmt::Debug for EpochManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochManager")
            .field("current", &self.current_epoch())
            .field("safe", &self.safe_epoch())
            .field("registered", &self.ids.in_use())
            .field("pending_actions", &self.drain_count.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for EpochManager {
    fn default() -> Self {
        Self::new()
    }
}

impl EpochManager {
    /// Creates a manager supporting up to [`MAX_THREADS`] registered threads.
    pub fn new() -> Self {
        Self::with_capacity(MAX_THREADS)
    }

    /// Creates a manager supporting up to `capacity` registered threads.
    pub fn with_capacity(capacity: usize) -> Self {
        let table = (0..capacity)
            .map(|_| CachePadded::new(AtomicU64::new(UNPROTECTED)))
            .collect();
        Self {
            current: CachePadded::new(AtomicU64::new(1)),
            table,
            ids: ThreadIdAllocator::new(capacity),
            drain_list: Mutex::new(Vec::new()),
            drain_count: AtomicUsize::new(0),
        }
    }

    /// Registers the calling thread, returning a handle used to protect
    /// accesses.  The slot is released when the handle is dropped.
    ///
    /// # Panics
    ///
    /// Panics if more than the configured number of threads register at once.
    pub fn register(self: &Arc<Self>) -> ThreadEpoch {
        let idx = self
            .ids
            .acquire()
            .expect("too many threads registered with EpochManager");
        ThreadEpoch {
            manager: Arc::clone(self),
            idx,
        }
    }

    /// The current global epoch.
    pub fn current_epoch(&self) -> u64 {
        self.current.load(Ordering::SeqCst)
    }

    /// Number of threads currently registered.
    pub fn registered_threads(&self) -> usize {
        self.ids.in_use()
    }

    /// Computes the *safe epoch*: the largest epoch `e` such that every
    /// currently protected thread has observed an epoch strictly greater than
    /// `e`.  If no thread is protected, every epoch below the current one is
    /// safe.
    pub fn safe_epoch(&self) -> u64 {
        let current = self.current.load(Ordering::SeqCst);
        let mut min_observed = u64::MAX;
        for slot in self.table.iter() {
            let v = slot.load(Ordering::SeqCst);
            if v != UNPROTECTED && v < min_observed {
                min_observed = v;
            }
        }
        if min_observed == u64::MAX {
            current.saturating_sub(0)
        } else {
            min_observed.saturating_sub(1).min(current)
        }
    }

    /// Returns `true` once `epoch` is safe (every protected thread has moved
    /// past it).
    pub fn is_safe(&self, epoch: u64) -> bool {
        self.safe_epoch() >= epoch
    }

    /// Atomically advances the global epoch by one and returns the *new*
    /// epoch value.
    pub fn bump(&self) -> u64 {
        self.current.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Advances the global epoch and registers `action` to run exactly once
    /// after every registered thread has observed the new epoch — i.e. after
    /// the global cut created by this bump is complete.
    ///
    /// Returns the new epoch value.
    pub fn bump_with_action<F>(&self, action: F) -> u64
    where
        F: FnOnce() + Send + 'static,
    {
        // The cut is "complete" once the epoch value that was current *before*
        // the bump becomes safe: at that point every protected thread has
        // refreshed to at least the bumped epoch.
        let trigger_epoch;
        {
            let mut list = self.drain_list.lock();
            let new = self.current.fetch_add(1, Ordering::SeqCst) + 1;
            trigger_epoch = new - 1;
            list.push(DrainItem {
                trigger_epoch,
                action: Box::new(action),
            });
            self.drain_count.fetch_add(1, Ordering::SeqCst);
        }
        // The cut may already be complete (e.g. no thread is protected).
        self.try_drain();
        trigger_epoch + 1
    }

    /// Executes any registered actions whose cut has completed.  Called from
    /// protect/refresh on the hot path (guarded by a cheap counter check) and
    /// callable directly by control-plane code.
    ///
    /// Returns the number of actions executed.
    pub fn try_drain(&self) -> usize {
        if self.drain_count.load(Ordering::SeqCst) == 0 {
            return 0;
        }
        let safe = self.safe_epoch();
        let ready: Vec<DrainItem> = {
            let mut list = self.drain_list.lock();
            let mut ready = Vec::new();
            let mut i = 0;
            while i < list.len() {
                if list[i].trigger_epoch <= safe {
                    ready.push(list.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            if !ready.is_empty() {
                self.drain_count.fetch_sub(ready.len(), Ordering::SeqCst);
            }
            ready
        };
        // Run actions outside the lock: they may themselves bump the epoch and
        // register further actions (checkpoint and migration state machines do
        // exactly this).
        let count = ready.len();
        for item in ready {
            (item.action)();
        }
        count
    }

    /// Number of actions currently waiting for their cut to complete.
    pub fn pending_actions(&self) -> usize {
        self.drain_count.load(Ordering::SeqCst)
    }

    fn protect_slot(&self, idx: usize) -> u64 {
        let e = self.current.load(Ordering::SeqCst);
        self.table[idx].store(e, Ordering::SeqCst);
        if self.drain_count.load(Ordering::Relaxed) > 0 {
            self.try_drain();
        }
        e
    }

    fn unprotect_slot(&self, idx: usize) {
        self.table[idx].store(UNPROTECTED, Ordering::SeqCst);
    }
}

/// Per-thread registration handle.
///
/// The handle owns a slot in the epoch table.  It is **not** `Sync`: each
/// thread registers for itself.  It is `Send` so a thread pool can be set up
/// by a coordinator and handles moved onto worker threads.
pub struct ThreadEpoch {
    manager: Arc<EpochManager>,
    idx: usize,
}

impl std::fmt::Debug for ThreadEpoch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadEpoch")
            .field("idx", &self.idx)
            .finish()
    }
}

impl ThreadEpoch {
    /// The dense index of this thread in the epoch table.
    pub fn index(&self) -> usize {
        self.idx
    }

    /// The manager this handle is registered with.
    pub fn manager(&self) -> &Arc<EpochManager> {
        &self.manager
    }

    /// Marks the thread protected at the current epoch and returns a guard
    /// that removes the protection when dropped.
    pub fn protect(&self) -> Guard<'_> {
        let epoch = self.manager.protect_slot(self.idx);
        Guard { owner: self, epoch }
    }

    /// Re-reads the global epoch into this thread's slot without dropping
    /// protection, and drains any completed actions.
    ///
    /// Long-running protected loops (server dispatch threads) call this
    /// between operations so that global cuts make progress.
    pub fn refresh(&self) -> u64 {
        self.manager.protect_slot(self.idx)
    }

    /// Explicitly removes protection (equivalent to dropping all guards).
    pub fn unprotect(&self) {
        self.manager.unprotect_slot(self.idx);
    }

    /// Epoch value currently recorded for this thread (0 if unprotected).
    pub fn observed_epoch(&self) -> u64 {
        self.manager.table[self.idx].load(Ordering::SeqCst)
    }
}

impl Drop for ThreadEpoch {
    fn drop(&mut self) {
        self.manager.unprotect_slot(self.idx);
        self.manager.ids.release(self.idx);
        // Give pending actions a chance to run now that this thread no longer
        // holds up the cut.
        self.manager.try_drain();
    }
}

/// RAII protection scope returned by [`ThreadEpoch::protect`].
#[must_use = "dropping the guard immediately removes epoch protection"]
pub struct Guard<'a> {
    owner: &'a ThreadEpoch,
    epoch: u64,
}

impl<'a> Guard<'a> {
    /// The epoch observed when this guard was created.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Refreshes the owning thread's slot to the current global epoch.
    pub fn refresh(&mut self) {
        self.epoch = self.owner.refresh();
    }
}

impl Drop for Guard<'_> {
    fn drop(&mut self) {
        self.owner.unprotect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn bump_increases_epoch() {
        let m = EpochManager::new();
        let e0 = m.current_epoch();
        let e1 = m.bump();
        assert_eq!(e1, e0 + 1);
        assert_eq!(m.current_epoch(), e1);
    }

    #[test]
    fn action_fires_immediately_when_no_thread_protected() {
        let m = Arc::new(EpochManager::new());
        let fired = Arc::new(AtomicUsize::new(0));
        let f = fired.clone();
        m.bump_with_action(move || {
            f.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        assert_eq!(m.pending_actions(), 0);
    }

    #[test]
    fn action_waits_for_protected_thread() {
        let m = Arc::new(EpochManager::new());
        let t = m.register();
        let _g = t.protect();

        let fired = Arc::new(AtomicUsize::new(0));
        let f = fired.clone();
        m.bump_with_action(move || {
            f.fetch_add(1, Ordering::SeqCst);
        });
        // The protected thread has not refreshed past the bump yet.
        m.try_drain();
        assert_eq!(fired.load(Ordering::SeqCst), 0);

        // Refreshing completes the cut.
        t.refresh();
        m.try_drain();
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn action_fires_exactly_once() {
        let m = Arc::new(EpochManager::new());
        let t = m.register();
        let _g = t.protect();
        let fired = Arc::new(AtomicUsize::new(0));
        let f = fired.clone();
        m.bump_with_action(move || {
            f.fetch_add(1, Ordering::SeqCst);
        });
        t.refresh();
        for _ in 0..10 {
            m.try_drain();
            t.refresh();
        }
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn dropping_guard_unprotects() {
        let m = Arc::new(EpochManager::new());
        let t = m.register();
        {
            let _g = t.protect();
            assert_ne!(t.observed_epoch(), UNPROTECTED);
        }
        assert_eq!(t.observed_epoch(), UNPROTECTED);
    }

    #[test]
    fn dropping_thread_handle_completes_cut() {
        let m = Arc::new(EpochManager::new());
        let t = m.register();
        let _g = t.protect();
        let fired = Arc::new(AtomicUsize::new(0));
        let f = fired.clone();
        m.bump_with_action(move || {
            f.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(fired.load(Ordering::SeqCst), 0);
        drop(_g);
        drop(t);
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn safe_epoch_tracks_minimum_observed() {
        let m = Arc::new(EpochManager::new());
        let t1 = m.register();
        let t2 = m.register();
        let _g1 = t1.protect();
        let _g2 = t2.protect();
        let protected_at = m.current_epoch();
        m.bump();
        m.bump();
        // Neither thread refreshed: safe epoch stays below their observation.
        assert_eq!(m.safe_epoch(), protected_at - 1);
        t1.refresh();
        // t2 still pins the old epoch.
        assert_eq!(m.safe_epoch(), protected_at - 1);
        t2.refresh();
        assert_eq!(m.safe_epoch(), m.current_epoch() - 1);
    }

    #[test]
    fn actions_registered_by_actions_run() {
        let m = Arc::new(EpochManager::new());
        let fired = Arc::new(AtomicUsize::new(0));
        let f_outer = fired.clone();
        let m2 = m.clone();
        m.bump_with_action(move || {
            let f_inner = f_outer.clone();
            f_outer.fetch_add(1, Ordering::SeqCst);
            m2.bump_with_action(move || {
                f_inner.fetch_add(10, Ordering::SeqCst);
            });
        });
        m.try_drain();
        assert_eq!(fired.load(Ordering::SeqCst), 11);
    }

    #[test]
    fn multithreaded_cut_counts_every_thread() {
        // N worker threads continuously protect/refresh; a cut must observe
        // all of them before its action runs.
        use std::sync::atomic::AtomicBool;
        let m = Arc::new(EpochManager::new());
        let stop = Arc::new(AtomicBool::new(false));
        let started = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = m.clone();
            let stop = stop.clone();
            let started = started.clone();
            handles.push(std::thread::spawn(move || {
                let t = m.register();
                started.fetch_add(1, Ordering::SeqCst);
                while !stop.load(Ordering::SeqCst) {
                    let _g = t.protect();
                    std::hint::spin_loop();
                }
            }));
        }
        while started.load(Ordering::SeqCst) < 4 {
            std::thread::yield_now();
        }
        let fired = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let f = fired.clone();
            m.bump_with_action(move || {
                f.fetch_add(1, Ordering::SeqCst);
            });
        }
        // The workers' protect() calls double as refresh+drain.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while fired.load(Ordering::SeqCst) < 50 && std::time::Instant::now() < deadline {
            m.try_drain();
            std::thread::yield_now();
        }
        stop.store(true, Ordering::SeqCst);
        for h in handles {
            h.join().unwrap();
        }
        m.try_drain();
        assert_eq!(fired.load(Ordering::SeqCst), 50);
    }
}
