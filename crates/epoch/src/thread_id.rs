//! Allocation of small, dense thread identifiers.
//!
//! The epoch table is a fixed array indexed by a small per-thread id.  Ids are
//! handed out from a free list so that short-lived worker threads (tests,
//! migration helpers) recycle slots instead of exhausting the table.

use std::sync::atomic::{AtomicBool, Ordering};

/// Allocates dense thread ids in `0..capacity`.
///
/// Allocation and release are lock-free; each slot is a single atomic flag.
#[derive(Debug)]
pub struct ThreadIdAllocator {
    slots: Box<[AtomicBool]>,
}

impl ThreadIdAllocator {
    /// Creates an allocator with `capacity` slots.
    pub fn new(capacity: usize) -> Self {
        let slots = (0..capacity).map(|_| AtomicBool::new(false)).collect();
        Self { slots }
    }

    /// Number of slots managed by this allocator.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Acquires a free id, or `None` if every slot is in use.
    pub fn acquire(&self) -> Option<usize> {
        for (idx, slot) in self.slots.iter().enumerate() {
            if slot
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return Some(idx);
            }
        }
        None
    }

    /// Releases a previously acquired id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range or was not currently acquired; both
    /// indicate a double-release bug in the caller.
    pub fn release(&self, id: usize) {
        let slot = &self.slots[id];
        let was = slot.swap(false, Ordering::AcqRel);
        assert!(was, "thread id {id} released twice");
    }

    /// Number of ids currently acquired.
    pub fn in_use(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.load(Ordering::Relaxed))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_roundtrip() {
        let alloc = ThreadIdAllocator::new(4);
        let a = alloc.acquire().unwrap();
        let b = alloc.acquire().unwrap();
        assert_ne!(a, b);
        assert_eq!(alloc.in_use(), 2);
        alloc.release(a);
        assert_eq!(alloc.in_use(), 1);
        let c = alloc.acquire().unwrap();
        assert_eq!(c, a, "released slot should be reused first");
        alloc.release(b);
        alloc.release(c);
        assert_eq!(alloc.in_use(), 0);
    }

    #[test]
    fn exhaustion_returns_none() {
        let alloc = ThreadIdAllocator::new(2);
        let a = alloc.acquire().unwrap();
        let b = alloc.acquire().unwrap();
        assert!(alloc.acquire().is_none());
        alloc.release(a);
        assert!(alloc.acquire().is_some());
        alloc.release(b);
    }

    #[test]
    #[should_panic(expected = "released twice")]
    fn double_release_panics() {
        let alloc = ThreadIdAllocator::new(2);
        let a = alloc.acquire().unwrap();
        alloc.release(a);
        alloc.release(a);
    }

    #[test]
    fn concurrent_acquire_is_unique() {
        use std::sync::Arc;
        let alloc = Arc::new(ThreadIdAllocator::new(64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let alloc = alloc.clone();
            handles.push(std::thread::spawn(move || {
                let mut ids = Vec::new();
                for _ in 0..8 {
                    ids.push(alloc.acquire().unwrap());
                }
                ids
            }));
        }
        let mut all: Vec<usize> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 64, "every acquired id must be distinct");
    }
}
