//! Randomized property tests over cluster layouts and their textual specs.
//!
//! Written in the same style as `codec_properties.rs` in the RPC crate:
//! the invariants were conceived as `proptest` properties, but the build
//! environment has no registry access, so they run over deterministic
//! seeded-PRNG cases instead — every failure is reproducible from the case
//! number.  The invariants:
//!
//! * **every** layout that resolves does so to a full partition of the
//!   hash space: disjoint ranges, no gaps, every registered id present,
//! * explicit layouts and `owns=` declarations round-trip through their
//!   textual specs (`Display` → parse is the identity),
//! * overlaps, gaps, duplicate ids, and assignments to unknown ids are
//!   rejected with the matching typed [`LayoutError`] — never a panic,
//! * arbitrary garbage and random single-character corruption of valid
//!   specs never panic the parsers (the same corruption discipline
//!   `codec_properties.rs` applies to wire frames).

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use shadowfax::{
    parse_peer_spec, validate_partition, ClusterLayout, HashRange, LayoutError, PeerOwns, RangeSet,
    ServerId,
};

/// Asserts the resolved map is a partition: every member id present, and
/// the union of all ranges tiles `[0, u64::MAX]` with no overlap.
fn assert_partition(map: &BTreeMap<ServerId, RangeSet>, ids: &[ServerId], context: &str) {
    for id in ids {
        assert!(map.contains_key(id), "{context}: id {} missing", id.0);
    }
    // The library's own validator must agree...
    validate_partition(map).unwrap_or_else(|e| panic!("{context}: not a partition: {e}"));
    // ... and so must a from-scratch reconstruction.
    let mut all: Vec<HashRange> = map
        .values()
        .flat_map(|rs| rs.ranges().iter().copied())
        .collect();
    all.sort();
    let mut cursor = 0u64;
    for r in &all {
        assert_eq!(r.start, cursor, "{context}: hole or overlap at {r}");
        cursor = r.end;
    }
    assert_eq!(cursor, u64::MAX, "{context}: top of the space unowned");
    let total: u64 = map.values().map(|rs| rs.total_width()).sum();
    assert_eq!(total, u64::MAX, "{context}: widths do not sum to the space");
}

/// Random distinct ids, sorted.
fn random_ids(rng: &mut StdRng, max_count: u64) -> Vec<ServerId> {
    let n = rng.gen_range(1u64..max_count + 1) as usize;
    let mut ids: Vec<u32> = Vec::new();
    while ids.len() < n {
        let id = rng.gen_range(0u64..64) as u32;
        if !ids.contains(&id) {
            ids.push(id);
        }
    }
    ids.sort_unstable();
    ids.into_iter().map(ServerId).collect()
}

/// Random cut points splitting the full space into `ids.len()` or more
/// contiguous slices, dealt round-robin to the ids: a valid explicit
/// layout where ids may own several disjoint ranges.
fn random_explicit(rng: &mut StdRng, ids: &[ServerId]) -> Vec<(ServerId, RangeSet)> {
    let slices = ids.len() + rng.gen_range(0u64..4) as usize;
    let mut cuts: Vec<u64> = (1..slices).map(|_| rng.gen::<u64>()).collect();
    cuts.push(0);
    cuts.push(u64::MAX);
    cuts.sort_unstable();
    cuts.dedup();
    let mut per_id: Vec<Vec<HashRange>> = vec![Vec::new(); ids.len()];
    for (i, pair) in cuts.windows(2).enumerate() {
        per_id[i % ids.len()].push(HashRange::new(pair[0], pair[1]));
    }
    ids.iter()
        .zip(per_id)
        .filter(|(_, ranges)| !ranges.is_empty())
        .map(|(id, ranges)| (*id, RangeSet::from_ranges(ranges)))
        .collect()
}

fn auto_members(ids: &[ServerId]) -> Vec<(ServerId, PeerOwns)> {
    ids.iter().map(|&id| (id, PeerOwns::Auto)).collect()
}

#[test]
fn partitioned_layouts_always_tile_the_space() {
    let mut rng = StdRng::seed_from_u64(0x1a_0001);
    for case in 0..400 {
        let ids = random_ids(&mut rng, 12);
        let map = ClusterLayout::Partitioned
            .resolve(&auto_members(&ids))
            .unwrap_or_else(|e| panic!("case {case}: partitioned resolve failed: {e}"));
        assert_partition(&map, &ids, &format!("case {case} (partitioned)"));
    }
}

#[test]
fn explicit_layouts_tile_the_space_and_roundtrip_their_specs() {
    let mut rng = StdRng::seed_from_u64(0x1a_0002);
    for case in 0..400 {
        let ids = random_ids(&mut rng, 8);
        let layout = ClusterLayout::Explicit(random_explicit(&mut rng, &ids));
        let map = layout
            .resolve(&auto_members(&ids))
            .unwrap_or_else(|e| panic!("case {case}: explicit resolve failed: {e}"));
        assert_partition(&map, &ids, &format!("case {case} (explicit)"));

        // Display -> parse is the identity, and the re-parsed layout
        // resolves to the same map.
        let spec = layout.to_string();
        let reparsed = ClusterLayout::from_spec(&spec)
            .unwrap_or_else(|e| panic!("case {case}: spec {spec:?} failed to re-parse: {e}"));
        assert_eq!(reparsed, layout, "case {case}: spec {spec:?}");
        assert_eq!(
            reparsed.resolve(&auto_members(&ids)).unwrap(),
            map,
            "case {case}: re-parsed layout resolves differently"
        );
    }
}

#[test]
fn scale_out_resolves_iff_server_zero_is_registered() {
    let mut rng = StdRng::seed_from_u64(0x1a_0003);
    for case in 0..200 {
        let ids = random_ids(&mut rng, 6);
        let result = ClusterLayout::ScaleOut.resolve(&auto_members(&ids));
        if ids.contains(&ServerId(0)) {
            let map = result.unwrap_or_else(|e| panic!("case {case}: {e}"));
            assert_partition(&map, &ids, &format!("case {case} (scale-out)"));
            assert_eq!(map[&ServerId(0)], RangeSet::full());
        } else {
            assert!(
                matches!(result, Err(LayoutError::Gap { .. })),
                "case {case}: scale-out without id 0 resolved: {result:?}"
            );
        }
    }
}

#[test]
fn mutated_layouts_are_rejected_with_typed_errors() {
    let mut rng = StdRng::seed_from_u64(0x1a_0004);
    let mut overlaps = 0u32;
    let mut gaps = 0u32;
    for case in 0..400 {
        let ids = random_ids(&mut rng, 6);
        let mut assigned = random_explicit(&mut rng, &ids);
        let victim = rng.gen_range(0u64..assigned.len() as u64) as usize;
        let ranges: Vec<HashRange> = assigned[victim].1.ranges().to_vec();
        let r = ranges[rng.gen_range(0u64..ranges.len() as u64) as usize];
        match rng.gen_range(0u64..3) {
            // Stretch a range downward into its neighbour: overlap
            // (unless it already starts at 0).
            0 if r.start > 0 => {
                let mut rs = assigned[victim].1.clone();
                rs.add(&[HashRange::new(r.start - 1, r.start)]);
                assigned[victim].1 = rs;
                let err = ClusterLayout::Explicit(assigned.clone())
                    .resolve(&auto_members(&ids))
                    .expect_err("overlap must not resolve");
                // The stretched range may instead have *filled a gap*
                // created by... no: the base layout tiled the space, so
                // growing any range can only collide.
                assert!(
                    matches!(err, LayoutError::Overlap { .. }),
                    "case {case}: expected Overlap, got {err}"
                );
                overlaps += 1;
            }
            // Drop an entire assignment: gap (the base layout gave every
            // listed id at least one range).
            1 => {
                let dropped = assigned.remove(victim);
                if assigned.is_empty() {
                    continue;
                }
                let err = ClusterLayout::Explicit(assigned.clone())
                    .resolve(&auto_members(&ids))
                    .expect_err("dropped assignment must leave a gap");
                assert!(
                    matches!(err, LayoutError::Gap { .. }),
                    "case {case}: expected Gap after dropping {dropped:?}, got {err}"
                );
                gaps += 1;
            }
            // Duplicate an assignment entry: conflicting assignment.
            _ => {
                let dup = assigned[victim].clone();
                assigned.push(dup);
                let err = ClusterLayout::Explicit(assigned.clone())
                    .resolve(&auto_members(&ids))
                    .expect_err("duplicate assignment must not resolve");
                assert!(
                    matches!(err, LayoutError::ConflictingAssignment(_)),
                    "case {case}: expected ConflictingAssignment, got {err}"
                );
            }
        }
    }
    assert!(
        overlaps > 50,
        "mutation mix degenerate: {overlaps} overlaps"
    );
    assert!(gaps > 50, "mutation mix degenerate: {gaps} gaps");
}

#[test]
fn peer_specs_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x1a_0005);
    for case in 0..400 {
        let id = rng.gen_range(0u64..1024) as u32;
        let port = 1024 + rng.gen_range(0u64..60000);
        let threads = 1 + rng.gen_range(0u64..8) as usize;
        let owns = match rng.gen_range(0u64..4) {
            0 => PeerOwns::Auto,
            1 => PeerOwns::Explicit(RangeSet::empty()),
            2 => PeerOwns::Explicit(RangeSet::full()),
            _ => {
                let ids = random_ids(&mut rng, 3);
                let slices = random_explicit(&mut rng, &ids);
                PeerOwns::Explicit(slices[0].1.clone())
            }
        };
        let spec = format!("id={id},addr=127.0.0.1:{port},threads={threads},owns={owns}");
        let peer = parse_peer_spec(&spec)
            .unwrap_or_else(|e| panic!("case {case}: spec {spec:?} rejected: {e}"));
        assert_eq!(peer.id, ServerId(id), "case {case}");
        assert_eq!(peer.address, format!("127.0.0.1:{port}"), "case {case}");
        assert_eq!(peer.threads, threads, "case {case}");
        assert_eq!(peer.owns, owns, "case {case}: spec {spec:?}");
    }
}

#[test]
fn corrupted_and_garbage_specs_never_panic() {
    let mut rng = StdRng::seed_from_u64(0x1a_0006);
    let alphabet: Vec<char> = "0123456789abcdefx=,-+:.idowns autofllne ".chars().collect();
    let mut rejected = 0u64;
    for _ in 0..2000 {
        // Pure garbage.
        let len = rng.gen_range(0u64..40) as usize;
        let garbage: String = (0..len)
            .map(|_| alphabet[rng.gen_range(0u64..alphabet.len() as u64) as usize])
            .collect();
        if ClusterLayout::from_spec(&garbage).is_err() {
            rejected += 1;
        }
        let _ = parse_peer_spec(&garbage);
        let _ = PeerOwns::from_spec(&garbage);

        // Single-character corruption of a valid spec.
        let ids = random_ids(&mut rng, 4);
        let valid = ClusterLayout::Explicit(random_explicit(&mut rng, &ids)).to_string();
        let mut chars: Vec<char> = valid.chars().collect();
        let pos = rng.gen_range(0u64..chars.len() as u64) as usize;
        chars[pos] = alphabet[rng.gen_range(0u64..alphabet.len() as u64) as usize];
        let corrupted: String = chars.into_iter().collect();
        // Must either parse (the corruption kept it well-formed) or fail
        // with the typed spec error — never panic.
        match ClusterLayout::from_spec(&corrupted) {
            Ok(_) => {}
            Err(LayoutError::Spec { .. }) => {}
            Err(other) => panic!("corrupted spec {corrupted:?}: unexpected error {other:?}"),
        }
    }
    assert!(rejected > 1000, "garbage generator degenerate: {rejected}");
}
