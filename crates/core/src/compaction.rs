//! Log compaction with lazy indirection-record cleanup (paper §3.3.3).
//!
//! Servers must periodically compact their logs anyway, to drop stale record
//! versions from the shared tier.  Shadowfax piggybacks the cleanup of
//! cross-log dependencies on that pass:
//!
//! * A live record whose hash range this server **no longer owns** is shipped
//!   to the range's current owner instead of being kept.  On receipt the
//!   owner inserts it only if its own latest version for the key is still an
//!   indirection record — i.e. the key was never fetched from the shared tier
//!   after migration — otherwise the copy is discarded
//!   ([`crate::messages::MigrationMsg::CompactionHandoff`]).
//! * An indirection record whose contained hash range this server no longer
//!   owns is dropped (the owner keeps its own copy).
//! * Everything else that is still live is kept: it is re-appended at the
//!   tail and survives the truncation of the compacted prefix.
//!
//! Barring normal-case request processing, this is the only time records that
//! are not in main memory are read, and it happens during the sequential I/O
//! of compaction — which has to be done anyway.

use std::collections::HashMap;
use std::sync::Arc;

use shadowfax_faster::{compact_until, record_is_foreign, CompactionStats, Disposition, KeyHash};

use crate::indirection::IndirectionRecord;
use crate::messages::MigrationMsg;
use crate::server::{Server, ServerMigConn};
use crate::ServerId;

/// The result of one [`Server::compact_log`] pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompactionOutcome {
    /// Raw compaction statistics (records scanned / kept / stale / ...).
    pub stats: CompactionStats,
    /// Live records handed off to their current owner because this server no
    /// longer owns their hash range.
    pub handed_off_records: u64,
    /// Indirection records dropped because their range is no longer owned.
    pub dropped_indirections: u64,
    /// Records that should have been handed off but could not be (their
    /// owner was unreachable); they were kept locally so no data is lost.
    pub kept_unreachable: u64,
}

impl Server {
    /// Compacts everything below the log's read-only boundary, handing
    /// records this server no longer owns to their current owner and dropping
    /// indirection records for ranges it no longer owns (paper §3.3.3).
    pub fn compact_log(self: &Arc<Self>) -> CompactionOutcome {
        let session = self.store.start_session();
        let owned_pairs: Vec<(u64, u64)> = self
            .owned
            .read()
            .ranges()
            .iter()
            .map(|r| (r.start, r.end))
            .collect();
        let snapshot = self.meta.snapshot();
        let my_id = self.id();

        let mut conns: HashMap<ServerId, Option<ServerMigConn>> = HashMap::new();
        let mut handed_off_records = 0u64;
        let mut dropped_indirections = 0u64;
        let mut kept_unreachable = 0u64;

        let until = self.store.log().read_only_address();
        let stats = compact_until(&self.store, &session, until, |record| {
            if record.is_indirection() {
                // Indirection records are keyed by a representative hash, so
                // ownership is decided by the range stored in their payload.
                let still_owned = IndirectionRecord::decode_value(record.value())
                    .map(|ind| {
                        owned_pairs
                            .iter()
                            .any(|(s, e)| ind.range.start < *e && *s < ind.range.end)
                    })
                    .unwrap_or(false);
                return if still_owned {
                    Disposition::Keep
                } else {
                    dropped_indirections += 1;
                    Disposition::Discard
                };
            }
            if !record_is_foreign(record, &owned_pairs) {
                return Disposition::Keep;
            }
            // The record belongs to a range this server migrated away: ship it
            // to whoever owns the range now.
            let hash = KeyHash::of(record.key()).raw();
            let owner = snapshot
                .owner_of(hash)
                .map(|(id, _)| id)
                .filter(|id| *id != my_id);
            let Some(owner) = owner else {
                // Unknown or self-owned (ownership raced back): keep it.
                kept_unreachable += 1;
                return Disposition::Keep;
            };
            let conn = conns.entry(owner).or_insert_with(|| {
                snapshot
                    .server(owner)
                    .and_then(|m| self.connect_migration(&m.address, owner, 0))
            });
            match conn {
                Some(conn) => {
                    let _ = conn.send_msg(MigrationMsg::CompactionHandoff {
                        key: record.key(),
                        value: record.value().to_vec(),
                    });
                    // Drain acknowledgements/noise so the channel never backs up.
                    while let Ok(Some(_)) = conn.try_recv_msg() {}
                    handed_off_records += 1;
                    Disposition::Handled
                }
                None => {
                    kept_unreachable += 1;
                    Disposition::Keep
                }
            }
        });

        CompactionOutcome {
            stats,
            handed_off_records,
            dropped_indirections,
            kept_unreachable,
        }
    }
}
