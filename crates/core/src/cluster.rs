//! In-process cluster assembly.
//!
//! The paper's deployment is a set of Azure VMs, a ZooKeeper ensemble, and an
//! Azure blob storage account.  [`Cluster`] assembles the equivalent inside
//! one process: a metadata store, a simulated client/server fabric, a
//! simulated migration fabric, a shared blob tier, and `n` servers whose
//! dispatch threads run on real OS threads.  Examples, integration tests and
//! the benchmark harness all build clusters through this type.

use std::sync::Arc;
use std::time::Duration;

use shadowfax_net::NetworkProfile;
use shadowfax_obs::{Counter, MetricsRegistry};
use shadowfax_storage::{LogId, SharedBlobTier, TierRecord, TierService};

use crate::client::ShadowfaxClient;
use crate::config::{ClientConfig, ServerConfig};
use crate::hash_range::{HashRange, RangeSet};
use crate::layout::{ClusterLayout, LayoutError, PeerOwns};
use crate::meta::{MergeOutcome, MetaReplica, MetadataStore};
use crate::server::{KvNetwork, MigrationConnector, MigrationNetwork, Server, ServerHandle};
use crate::ServerId;

/// One view-tagged request to read a spilled chain out of this process's
/// shared tier on behalf of a peer process (the serving half of the
/// cross-process chain-fetch protocol).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainFetchQuery {
    /// Cluster-wide id of the server asking.
    pub requester: u32,
    /// The requester's current serving view.
    pub view: u64,
    /// The shared-tier log to read.
    pub log: u64,
    /// Byte offset of the chain's newest record.
    pub address: u64,
    /// Upper bound on records returned (the reply carries a resume address
    /// when the chain is longer).
    pub max_records: u32,
}

/// The record batch answering a [`ChainFetchQuery`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainFetchReply {
    /// The log that was read.
    pub log: u64,
    /// The address the walk started from (echoed).
    pub address: u64,
    /// Address to resume the walk from, or 0 when the chain is exhausted.
    pub next: u64,
    /// The chain's records, newest first, at most one per key.
    pub records: Vec<TierRecord>,
}

/// Why a chain fetch was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainFetchError {
    /// The request's view tag is older than the view this process's metadata
    /// store records for the requester: the fetch is from a dead migration
    /// epoch.
    StaleView {
        /// The view the metadata store holds for the requester.
        expected: u64,
        /// The view the request carried.
        got: u64,
    },
    /// The address lies beyond everything the log has ever written.
    OutOfRange {
        /// The offending address.
        address: u64,
        /// The log's written extent.
        extent: u64,
    },
    /// The log does not exist on this process's shared tier.
    UnknownLog(u64),
    /// The requester is not registered at this process's metadata store.
    UnknownRequester(u32),
    /// The tier failed to read mid-walk; the chain is currently unreadable
    /// (as opposed to exhausted — the fetcher must keep the operation
    /// pending, not report a miss).
    Unreadable {
        /// The log being walked.
        log: u64,
        /// The address whose read failed.
        address: u64,
    },
}

impl std::fmt::Display for ChainFetchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainFetchError::StaleView { expected, got } => {
                write!(f, "stale view {got} (requester is at view {expected})")
            }
            ChainFetchError::OutOfRange { address, extent } => {
                write!(f, "address {address} beyond written extent {extent}")
            }
            ChainFetchError::UnknownLog(log) => write!(f, "log {log} not on this tier"),
            ChainFetchError::UnknownRequester(id) => write!(f, "unknown requester server {id}"),
            ChainFetchError::Unreadable { log, address } => {
                write!(f, "log {log} unreadable at address {address}")
            }
        }
    }
}

/// Counters for the chain-fetch serving path (queried over the control
/// plane and published by CI alongside the bench numbers).
///
/// These are views over registry counters (`tier.chain.*`): the wire
/// snapshot and the `GET_METRICS` frame read the same cells, so the two
/// exposures can never disagree.
#[derive(Debug, Default)]
pub struct ChainFetchStats {
    served: Counter,
    records_served: Counter,
    rejected_stale_view: Counter,
    rejected_out_of_range: Counter,
}

/// A point-in-time copy of [`ChainFetchStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChainFetchSnapshot {
    /// Fetches answered with a record batch.
    pub served: u64,
    /// Total records across all served batches.
    pub records_served: u64,
    /// Fetches rejected for carrying a stale view tag.
    pub rejected_stale_view: u64,
    /// Fetches rejected for an out-of-range address or unknown log.
    pub rejected_out_of_range: u64,
}

impl ChainFetchStats {
    /// Handles onto the registry's `tier.chain.*` counters.
    pub fn registered(metrics: &MetricsRegistry) -> Self {
        ChainFetchStats {
            served: metrics.counter("tier.chain.served"),
            records_served: metrics.counter("tier.chain.records_served"),
            rejected_stale_view: metrics.counter("tier.chain.rejected_stale_view"),
            rejected_out_of_range: metrics.counter("tier.chain.rejected_out_of_range"),
        }
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> ChainFetchSnapshot {
        ChainFetchSnapshot {
            served: self.served.value(),
            records_served: self.records_served.value(),
            rejected_stale_view: self.rejected_stale_view.value(),
            rejected_out_of_range: self.rejected_out_of_range.value(),
        }
    }
}

/// Aggregated cancellation / liveness counters across a process's local
/// servers (queried over the control plane and published by CI alongside
/// the bench numbers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CancellationSnapshot {
    /// Cancellation events at local servers — one per server *role* rolled
    /// back.  A multi-process deployment reports one per process; a
    /// migration whose source and target are both hosted here counts once
    /// for each role.
    pub migrations_cancelled: u64,
    /// Migration items whose shipment was undone by cancellations.
    pub records_rolled_back: u64,
    /// Heartbeat intervals that elapsed without hearing from a migration
    /// peer.
    pub heartbeats_missed: u64,
}

/// A server running in *another* OS process, registered with this process's
/// metadata store so local servers can route migrations (and clients can
/// route requests) to it.
#[derive(Debug, Clone)]
pub struct PeerServer {
    /// The peer's cluster-wide id.
    pub id: ServerId,
    /// The peer's address.  A socket address (`"10.0.0.7:4871"`) tells the
    /// RPC layer's migration connector to dial TCP instead of the
    /// in-process fabric.
    pub address: String,
    /// Number of dispatch threads the peer runs.
    pub threads: usize,
    /// What the peer owns at startup: [`PeerOwns::Auto`] lets the cluster
    /// layout assign its ranges (every process derives the same split from
    /// the same membership), while an explicit declaration pins them (and
    /// must agree with the peer process's own configuration).
    pub owns: PeerOwns,
}

/// Options controlling cluster assembly.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Per-server configuration template (the id field is overwritten).
    pub server_template: ServerConfig,
    /// Number of servers to start.
    pub servers: usize,
    /// Id of the first local server; server `i` gets id `base_id + i`.
    /// Non-zero values are used by multi-process deployments where each
    /// process hosts a different slice of the cluster.
    pub base_id: u32,
    /// Servers running in other OS processes, registered with this
    /// process's metadata store at startup.
    pub peers: Vec<PeerServer>,
    /// Network cost profile for the client/server fabric.
    pub kv_profile: NetworkProfile,
    /// Network cost profile for the server/server (migration) fabric.
    pub migration_profile: NetworkProfile,
    /// Capacity of each server's log space on the shared blob tier.
    pub shared_tier_capacity: u64,
    /// How initial ownership is assigned across the cluster's *global* ids
    /// (local servers plus peers): [`ClusterLayout::ScaleOut`] gives
    /// everything to server 0 (the Figure 10 experiments),
    /// [`ClusterLayout::Partitioned`] splits the space evenly, and
    /// [`ClusterLayout::Explicit`] spells per-id ranges out.
    pub layout: ClusterLayout,
}

impl ClusterConfig {
    /// A small two-server configuration used by tests and examples: server 0
    /// owns the whole hash space, server 1 is an idle scale-out target.
    pub fn two_server_test() -> Self {
        ClusterConfig {
            server_template: ServerConfig::small_for_tests(ServerId(0)),
            servers: 2,
            base_id: 0,
            peers: Vec::new(),
            kv_profile: NetworkProfile::instant(),
            migration_profile: NetworkProfile::instant(),
            shared_tier_capacity: 1 << 30,
            layout: ClusterLayout::ScaleOut,
        }
    }

    /// An `n`-server configuration with the hash space split evenly.
    pub fn balanced(n: usize) -> Self {
        ClusterConfig {
            server_template: ServerConfig::small_for_tests(ServerId(0)),
            servers: n,
            base_id: 0,
            peers: Vec::new(),
            kv_profile: NetworkProfile::instant(),
            migration_profile: NetworkProfile::instant(),
            shared_tier_capacity: 1 << 30,
            layout: ClusterLayout::Partitioned,
        }
    }
}

/// A running in-process cluster.
pub struct Cluster {
    meta: Arc<MetadataStore>,
    kv_net: Arc<KvNetwork>,
    mig_net: Arc<MigrationNetwork>,
    shared_tier: Arc<SharedBlobTier>,
    metrics: Arc<MetricsRegistry>,
    chain_stats: ChainFetchStats,
    handles: Vec<ServerHandle>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("servers", &self.handles.len())
            .finish()
    }
}

impl Cluster {
    /// Builds and starts a cluster.
    ///
    /// # Panics
    ///
    /// Panics if the configured layout does not resolve to a valid
    /// partition of the hash space; use [`Cluster::try_start`] to handle
    /// the typed error instead.
    pub fn start(config: ClusterConfig) -> Self {
        Self::try_start(config).unwrap_or_else(|e| panic!("invalid cluster layout: {e}"))
    }

    /// Builds and starts a cluster, resolving and validating the configured
    /// [`ClusterLayout`] over the cluster's global membership (the local
    /// servers plus every registered peer).
    ///
    /// # Errors
    ///
    /// Returns a typed [`LayoutError`] when ids collide, peers pin ranges
    /// that overlap the layout's assignment, or the resolved map leaves a
    /// hole in the hash space.  Nothing is spawned on error.
    pub fn try_start(config: ClusterConfig) -> Result<Self, LayoutError> {
        // The cluster's global membership: the servers this process hosts
        // (their ranges always come from the layout) and the peers other
        // processes host (which may pin their ranges explicitly).
        let mut members: Vec<(ServerId, PeerOwns)> = (0..config.servers)
            .map(|i| (ServerId(config.base_id + i as u32), PeerOwns::Auto))
            .collect();
        if members.is_empty() {
            return Err(LayoutError::NoServers);
        }
        for peer in &config.peers {
            members.push((peer.id, peer.owns.clone()));
        }
        let mut assignment = config.layout.resolve(&members)?;

        let meta = MetadataStore::new();
        let kv_net: Arc<KvNetwork> = KvNetwork::new(config.kv_profile);
        let mig_net: Arc<MigrationNetwork> = MigrationNetwork::new(config.migration_profile);
        let shared_tier = SharedBlobTier::new(config.shared_tier_capacity);
        let metrics = Arc::new(MetricsRegistry::new());
        let chain_stats = ChainFetchStats::registered(&metrics);
        {
            let tier = Arc::clone(&shared_tier);
            metrics.register_source(
                "tier.shared",
                Box::new(move |out| {
                    let s = tier.counters().snapshot();
                    out.push(("tier.shared.reads".to_string(), s.reads));
                    out.push(("tier.shared.writes".to_string(), s.writes));
                    out.push(("tier.shared.bytes_read".to_string(), s.bytes_read));
                    out.push(("tier.shared.bytes_written".to_string(), s.bytes_written));
                }),
            );
        }

        // Servers in other processes are registered first so ownership
        // lookups and migration routing see them from the start.
        for peer in &config.peers {
            let ranges = assignment.remove(&peer.id).unwrap_or_default();
            meta.try_register_server(peer.id, peer.address.clone(), peer.threads, ranges)
                .map_err(|e| match e {
                    crate::meta::MetaError::OwnershipOverlap {
                        server,
                        other,
                        range,
                    } => LayoutError::Overlap {
                        a: server,
                        b: other,
                        range,
                    },
                    _ => LayoutError::DuplicateServer(peer.id),
                })?;
        }

        let mut handles = Vec::with_capacity(config.servers);
        for i in 0..config.servers {
            let mut server_config = config.server_template.clone();
            let global_id = ServerId(config.base_id + i as u32);
            server_config.id = global_id;
            let ranges = assignment.remove(&global_id).unwrap_or_default();
            let server = Server::new(
                server_config,
                ranges,
                Arc::clone(&meta),
                Arc::clone(&kv_net),
                Arc::clone(&mig_net),
                Arc::clone(&shared_tier),
                Arc::clone(&metrics),
            );
            handles.push(server.spawn_threads());
        }
        Ok(Cluster {
            meta,
            kv_net,
            mig_net,
            shared_tier,
            metrics,
            chain_stats,
            handles,
        })
    }

    /// The metadata store.
    pub fn meta(&self) -> &Arc<MetadataStore> {
        &self.meta
    }

    /// The metadata store behind the [`MetadataService`] seam.
    pub fn meta_service(&self) -> Arc<dyn crate::MetadataService> {
        Arc::clone(&self.meta) as Arc<dyn crate::MetadataService>
    }

    /// The control address of the *process* hosting `source`, when that
    /// server is not hosted here and was registered with a socket address —
    /// i.e. where a migration originated at this process must be forwarded
    /// so the source's own process drives it.  `None` means the server is
    /// local (or unknown / fabric-addressed) and the operation runs here.
    pub fn remote_source_addr(&self, source: ServerId) -> Option<String> {
        if self.server(source).is_some() {
            return None;
        }
        let snapshot = self.meta.snapshot();
        let meta = snapshot.server(source)?;
        if meta.address.contains(':') {
            Some(meta.address.clone())
        } else {
            None
        }
    }

    /// The control address of the process hosting the *source* of an
    /// in-flight migration, when it is not this process (cancellations
    /// originated elsewhere are forwarded there, since the source process
    /// drives the rollback and the relay to the target).
    pub fn remote_addr_for_migration(&self, migration_id: u64) -> Option<String> {
        match self.meta.migration_state(migration_id) {
            Ok(Some(dep)) if !dep.cancelled => {
                // Prefer the source's process; if the source is local the
                // cancellation runs here.
                self.remote_source_addr(dep.source)
            }
            _ => None,
        }
    }

    /// Merges a metadata replica received from a peer process (the broker
    /// fan-out path), then repairs local state: any dependency that
    /// *became* cancelled through the merge has its involved local servers
    /// drop in-flight migration state and re-adopt the post-cancellation
    /// ownership map.
    pub fn merge_meta_replica(&self, replica: &MetaReplica) -> MergeOutcome {
        let outcome = self.meta.merge_replica(replica);
        for dep in &outcome.newly_cancelled {
            for id in [dep.source, dep.target] {
                if let Some(server) = self.server(id) {
                    server.cancel_migration_local(dep.id);
                    server.abort_migration_state(dep.id);
                    server.refresh_ownership_from_meta();
                }
            }
        }
        outcome
    }

    /// The client/server fabric (used to build additional clients).
    pub fn kv_network(&self) -> &Arc<KvNetwork> {
        &self.kv_net
    }

    /// The server/server migration fabric.
    pub fn migration_network(&self) -> &Arc<MigrationNetwork> {
        &self.mig_net
    }

    /// The shared blob tier.
    pub fn shared_tier(&self) -> &Arc<SharedBlobTier> {
        &self.shared_tier
    }

    /// The process metrics registry: every local server's counter
    /// families, the chain-fetch serving-path counters, the shared-tier
    /// device counters, and the migration event timeline.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Installs a migration connector on every local server, replacing the
    /// default in-process fabric.  The RPC layer uses this to route
    /// migrations to peer servers over TCP.
    pub fn set_migration_connector(&self, connector: Arc<dyn MigrationConnector>) {
        for handle in &self.handles {
            handle
                .server()
                .set_migration_connector(Arc::clone(&connector));
        }
    }

    /// Installs a tier service on every local server, replacing the default
    /// (the process-local shared tier).  The RPC layer uses this to resolve
    /// indirection records whose chains live in peer processes.
    pub fn set_tier_service(&self, service: Arc<dyn TierService>) {
        for handle in &self.handles {
            handle.server().set_tier_service(Arc::clone(&service));
        }
    }

    /// Serves one cross-process chain fetch out of this process's shared
    /// tier: validates the request's view tag against the metadata store,
    /// range-checks the address, then walks the chain and returns its
    /// records (see [`ChainFetchReply`]).
    pub fn serve_chain_fetch(
        &self,
        query: &ChainFetchQuery,
    ) -> Result<ChainFetchReply, ChainFetchError> {
        match self.meta.view_of(ServerId(query.requester)) {
            None => {
                self.chain_stats.rejected_stale_view.inc();
                return Err(ChainFetchError::UnknownRequester(query.requester));
            }
            Some(expected) if query.view < expected => {
                self.chain_stats.rejected_stale_view.inc();
                return Err(ChainFetchError::StaleView {
                    expected,
                    got: query.view,
                });
            }
            Some(_) => {}
        }
        let log = LogId(query.log);
        let extent = match self.shared_tier.written_extent_of(log) {
            Ok(extent) => extent,
            Err(_) => {
                self.chain_stats.rejected_out_of_range.inc();
                return Err(ChainFetchError::UnknownLog(query.log));
            }
        };
        if query.address >= extent {
            self.chain_stats.rejected_out_of_range.inc();
            return Err(ChainFetchError::OutOfRange {
                address: query.address,
                extent,
            });
        }
        let max = (query.max_records as usize).clamp(1, 4096);
        // Byte budget per reply: well under the 16 MiB frame limit even
        // with per-record framing overhead, so a page of large values can
        // always be encoded and decoded.
        const MAX_CHAIN_REPLY_BYTES: usize = 4 * 1024 * 1024;
        let (records, next) = match crate::migration::read_chain_records(
            &self.shared_tier,
            log,
            shadowfax_faster::Address::new(query.address),
            max,
            MAX_CHAIN_REPLY_BYTES,
        ) {
            crate::migration::ChainWalk::Page(records, next) => (records, next),
            crate::migration::ChainWalk::Unreadable { address } => {
                return Err(ChainFetchError::Unreadable {
                    log: query.log,
                    address,
                });
            }
        };
        self.chain_stats.served.inc();
        self.chain_stats.records_served.add(records.len() as u64);
        Ok(ChainFetchReply {
            log: query.log,
            address: query.address,
            next,
            records,
        })
    }

    /// Counters for the chain-fetch serving path.
    pub fn chain_fetch_stats(&self) -> ChainFetchSnapshot {
        self.chain_stats.snapshot()
    }

    /// Total chain fetches local servers resolved against *remote* tiers.
    pub fn remote_chain_fetches(&self) -> u64 {
        self.handles
            .iter()
            .map(|h| h.server().remote_chain_fetches())
            .sum()
    }

    /// The running servers.
    pub fn servers(&self) -> Vec<Arc<Server>> {
        self.handles
            .iter()
            .map(|h| Arc::clone(h.server()))
            .collect()
    }

    /// One server by id.
    pub fn server(&self, id: ServerId) -> Option<Arc<Server>> {
        self.handles
            .iter()
            .map(|h| h.server())
            .find(|s| s.id() == id)
            .cloned()
    }

    /// Builds a client bound to this cluster.
    pub fn client(&self, config: ClientConfig) -> ShadowfaxClient {
        ShadowfaxClient::new(config, Arc::clone(&self.meta), Arc::clone(&self.kv_net))
    }

    /// Total operations completed across every server.
    pub fn total_completed_ops(&self) -> u64 {
        self.handles
            .iter()
            .map(|h| h.server().completed_ops())
            .sum()
    }

    /// Starts migrating `fraction` of `source`'s first owned range to
    /// `target`.  Returns the migration id.
    pub fn migrate_fraction(
        &self,
        source: ServerId,
        target: ServerId,
        fraction: f64,
    ) -> Result<u64, String> {
        let src = self.server(source).ok_or("unknown source server")?;
        let owned = src.owned_ranges();
        let first = owned
            .ranges()
            .first()
            .copied()
            .ok_or("source owns no ranges")?;
        let moving = first.take_fraction(fraction);
        src.start_migration(vec![moving], target)
    }

    /// Starts migrating an explicit set of ranges.
    pub fn migrate_ranges(
        &self,
        source: ServerId,
        target: ServerId,
        ranges: Vec<HashRange>,
    ) -> Result<u64, String> {
        let src = self.server(source).ok_or("unknown source server")?;
        src.start_migration(ranges, target)
    }

    /// Cancels an in-flight migration (paper §3.3.1), the operator-driven
    /// path behind `shadowfax-cli cancel`: the dependency is cancelled at
    /// the metadata store (ownership of the migrating ranges rolls back to
    /// the source, both views advance), and every *local* server involved
    /// drops its in-flight state, checkpoints, and re-adopts the
    /// post-cancellation ownership map.  A source hosted here relays the
    /// cancellation to a remote target over the migration control link.
    ///
    /// Idempotent: cancelling an already-cancelled migration succeeds.
    ///
    /// # Errors
    ///
    /// Fails if the migration id was never issued, or if it has already
    /// completed on both sides (a durable migration cannot be rolled back).
    pub fn cancel_migration(&self, migration_id: u64) -> Result<(), String> {
        let dep = match self.meta.migration_state(migration_id) {
            Err(e) => return Err(e.to_string()),
            Ok(None) => {
                return Err(format!(
                    "migration {migration_id} already completed durably; it cannot be cancelled"
                ))
            }
            Ok(Some(dep)) => dep,
        };
        // An already-cancelled migration is not an early return: a retried
        // cancel is also the repair path for a server that missed the
        // cancellation (e.g. the peer's best-effort relay was lost) and
        // still holds in-flight state for the dead dependency.
        let already_cancelled = dep.cancelled;
        // Local servers drive their own rollback (their paths also cancel at
        // the metadata store, and a local source relays the cancellation to
        // its target over the migration control link).
        let mut cancelled_by_server = false;
        if let Some(src) = self.server(dep.source) {
            cancelled_by_server |= src.cancel_migration_local(migration_id);
        }
        if let Some(tgt) = self.server(dep.target) {
            cancelled_by_server |= tgt.cancel_migration_local(migration_id);
        }
        // No local server held in-flight state: cancel directly, and count
        // it against an involved local server so the cancellation counters
        // still reflect the operation.
        if !already_cancelled && !cancelled_by_server {
            self.meta
                .cancel_migration(migration_id)
                .map_err(|e| e.to_string())?;
            if let Some(server) = self.server(dep.source).or_else(|| self.server(dep.target)) {
                server.note_cancellation(
                    migration_id,
                    0,
                    0,
                    "operator request (no in-flight state held locally)",
                );
            }
        }
        // Safety net: whatever path ran, involved local servers drop any
        // remaining in-flight state and adopt the post-cancellation
        // ownership map and views.
        for id in [dep.source, dep.target] {
            if let Some(server) = self.server(id) {
                server.abort_migration_state(migration_id);
                server.refresh_ownership_from_meta();
            }
        }
        match self.meta.migration_state(migration_id) {
            Ok(Some(dep)) if dep.cancelled => Ok(()),
            other => Err(format!(
                "migration {migration_id} was not cancelled (state: {other:?})"
            )),
        }
    }

    /// Aggregated cancellation / liveness counters across local servers.
    pub fn cancellation_stats(&self) -> CancellationSnapshot {
        let mut snap = CancellationSnapshot::default();
        for h in &self.handles {
            let s = h.server();
            snap.migrations_cancelled += s.migrations_cancelled();
            snap.records_rolled_back += s.records_rolled_back();
            snap.heartbeats_missed += s.heartbeats_missed();
        }
        snap
    }

    /// Removes and returns the handle of server `id`, if it is running.
    /// Used by crash simulation ([`Cluster::crash_server`]) and scale-in.
    pub(crate) fn take_handle(&mut self, id: ServerId) -> Option<ServerHandle> {
        let pos = self.handles.iter().position(|h| h.server().id() == id)?;
        Some(self.handles.remove(pos))
    }

    /// Adds a newly started server to the cluster (used by crash recovery).
    pub(crate) fn push_handle(&mut self, handle: ServerHandle) {
        self.handles.push(handle);
    }

    /// Adds a brand-new, initially empty server to the running cluster — the
    /// "provision a new VM" half of elastic scale-out.  The server starts
    /// with no owned ranges; move load onto it with
    /// [`Cluster::migrate_fraction`] or [`Cluster::migrate_ranges`].
    pub fn add_server(&mut self, config: ServerConfig) -> Result<ServerId, String> {
        if self.server(config.id).is_some() {
            return Err(format!("server {} is already running", config.id));
        }
        let server = Server::new(
            config,
            RangeSet::empty(),
            Arc::clone(&self.meta),
            Arc::clone(&self.kv_net),
            Arc::clone(&self.mig_net),
            Arc::clone(&self.shared_tier),
            Arc::clone(&self.metrics),
        );
        let id = server.id();
        self.handles.push(server.spawn_threads());
        Ok(id)
    }

    /// Elastic scale-in: migrates every range `from` owns to `to`, waits for
    /// the migration to become durable, deregisters `from` from the metadata
    /// store, and stops its dispatch threads.
    ///
    /// # Errors
    ///
    /// Fails if either server is unknown, if the migration cannot start, or
    /// if it does not complete within `timeout` (in which case the server is
    /// left running and still registered).
    pub fn scale_in(
        &mut self,
        from: ServerId,
        to: ServerId,
        timeout: Duration,
    ) -> Result<(), String> {
        let src = self
            .server(from)
            .ok_or_else(|| format!("unknown server {from}"))?;
        self.server(to)
            .ok_or_else(|| format!("unknown server {to}"))?;
        let ranges = src.owned_ranges().ranges().to_vec();
        if !ranges.is_empty() {
            self.migrate_ranges(from, to, ranges)?;
            if !self.wait_for_migrations(timeout) {
                return Err(format!(
                    "scale-in migration from {from} to {to} did not complete within {timeout:?}"
                ));
            }
        }
        self.meta.deregister_server(from);
        let handle = self
            .take_handle(from)
            .ok_or_else(|| format!("unknown server {from}"))?;
        handle.shutdown();
        Ok(())
    }

    /// Waits until no server has a migration in flight (or the timeout
    /// expires).  Returns `true` if the cluster became quiescent.
    pub fn wait_for_migrations(&self, timeout: Duration) -> bool {
        let start = std::time::Instant::now();
        loop {
            let busy = self
                .handles
                .iter()
                .any(|h| h.server().migration_in_progress())
                || self.meta.pending_migrations() > 0;
            if !busy {
                return true;
            }
            if start.elapsed() > timeout {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Stops every server and waits for its threads to exit.
    pub fn shutdown(self) {
        for h in &self.handles {
            h.server().request_shutdown();
        }
        for h in self.handles {
            h.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadowfax_hlog::{Address, RecordFlags, RecordHeader, RECORD_HEADER_BYTES};

    /// Writes one encoded record at `offset` of `log` on the shared tier and
    /// returns the offset (so chains can be built bottom-up).
    fn put_record(
        cluster: &Cluster,
        log: LogId,
        offset: u64,
        key: u64,
        prev: u64,
        flags: RecordFlags,
        value: &[u8],
    ) -> u64 {
        let header = RecordHeader {
            prev: Address::new(prev),
            flags,
            version: 1,
            value_len: value.len() as u32,
            key,
        };
        let mut buf = vec![0u8; RECORD_HEADER_BYTES + value.len()];
        header.encode_into(&mut buf);
        buf[RECORD_HEADER_BYTES..].copy_from_slice(value);
        cluster.shared_tier().write_log(log, offset, &buf).unwrap();
        offset
    }

    fn query(requester: u32, view: u64, log: u64, address: u64) -> ChainFetchQuery {
        ChainFetchQuery {
            requester,
            view,
            log,
            address,
            max_records: 64,
        }
    }

    #[test]
    fn serve_chain_fetch_walks_dedups_and_rejects() {
        let cluster = Cluster::start(ClusterConfig::two_server_test());
        let log = LogId(41);
        // Chain, oldest first: key 7 (old version) <- key 9 (tombstone)
        // <- key 7 (new version).  The walk must return the newest version
        // of 7 once and the tombstone of 9 with its flag intact.
        let a = put_record(&cluster, log, 64, 7, 0, RecordFlags::empty(), b"old-7");
        let b = put_record(&cluster, log, 256, 9, a, RecordFlags::TOMBSTONE, b"");
        let c = put_record(&cluster, log, 512, 7, b, RecordFlags::empty(), b"new-7");

        let reply = cluster
            .serve_chain_fetch(&query(0, 1, log.0, c))
            .expect("valid fetch");
        assert_eq!(reply.next, 0, "short chain must be exhausted in one page");
        assert_eq!(reply.records.len(), 2);
        assert_eq!(reply.records[0].key, 7);
        assert_eq!(reply.records[0].value, b"new-7");
        assert_eq!(reply.records[1].key, 9);
        assert!(RecordFlags::from_bits(reply.records[1].flags).contains(RecordFlags::TOMBSTONE));

        // Stale view: the metadata store has server 0 at view 1.
        assert!(matches!(
            cluster.serve_chain_fetch(&query(0, 0, log.0, c)),
            Err(ChainFetchError::StaleView {
                expected: 1,
                got: 0
            })
        ));
        // Unknown requester.
        assert!(matches!(
            cluster.serve_chain_fetch(&query(99, 1, log.0, c)),
            Err(ChainFetchError::UnknownRequester(99))
        ));
        // Out of range / unknown log.
        assert!(matches!(
            cluster.serve_chain_fetch(&query(0, 1, log.0, 1 << 40)),
            Err(ChainFetchError::OutOfRange { .. })
        ));
        assert!(matches!(
            cluster.serve_chain_fetch(&query(0, 1, 12345, c)),
            Err(ChainFetchError::UnknownLog(12345))
        ));

        // Every outcome above was counted.
        let stats = cluster.chain_fetch_stats();
        assert_eq!(stats.served, 1);
        assert_eq!(stats.records_served, 2);
        assert_eq!(stats.rejected_stale_view, 2); // stale view + unknown requester
        assert_eq!(stats.rejected_out_of_range, 2); // out of range + unknown log
        cluster.shutdown();
    }

    #[test]
    fn serve_chain_fetch_pages_by_bytes_and_rejects_unreadable_chains() {
        let cluster = Cluster::start(ClusterConfig::two_server_test());
        let log = LogId(43);
        // Three records with 2 MiB values: the 4 MiB reply budget must cut
        // the page after two and hand back a resume address — never an
        // undecodable oversized frame.
        let big = vec![0xAB; 2 * 1024 * 1024];
        let mut prev = 0u64;
        for i in 0..3u64 {
            prev = put_record(
                &cluster,
                log,
                64 + i * (4 * 1024 * 1024),
                200 + i,
                prev,
                RecordFlags::empty(),
                &big,
            );
        }
        let reply = cluster
            .serve_chain_fetch(&query(0, 1, log.0, prev))
            .expect("byte-budgeted fetch");
        assert_eq!(reply.records.len(), 2, "byte budget did not cut the page");
        assert_ne!(reply.next, 0);
        let rest = cluster
            .serve_chain_fetch(&query(0, 1, log.0, reply.next))
            .expect("resumed fetch");
        assert_eq!(rest.records.len(), 1);
        assert_eq!(rest.next, 0);

        // A chain whose prev pointer lands in never-written space is
        // *unreadable*, not exhausted: reporting it exhausted would turn a
        // tier I/O error into an acknowledged "not found" at the fetcher.
        let broken = put_record(
            &cluster,
            log,
            16 * 1024 * 1024,
            777,
            13 * 1024 * 1024, // unwritten offset
            RecordFlags::empty(),
            b"x",
        );
        match cluster.serve_chain_fetch(&query(0, 1, log.0, broken)) {
            Err(ChainFetchError::Unreadable { address, .. }) => {
                assert_eq!(address, 13 * 1024 * 1024)
            }
            other => panic!("expected Unreadable, got {other:?}"),
        }
        cluster.shutdown();
    }

    #[test]
    fn serve_chain_fetch_pages_long_chains() {
        let cluster = Cluster::start(ClusterConfig::two_server_test());
        let log = LogId(42);
        // 10 records, chained; ask for pages of 4.
        let mut prev = 0u64;
        let mut tops = Vec::new();
        for i in 0..10u64 {
            prev = put_record(
                &cluster,
                log,
                64 + i * 64,
                100 + i,
                prev,
                RecordFlags::empty(),
                b"v",
            );
            tops.push(prev);
        }
        let mut q = query(0, 1, log.0, *tops.last().unwrap());
        q.max_records = 4;
        let first = cluster.serve_chain_fetch(&q).expect("first page");
        assert_eq!(first.records.len(), 4);
        assert_ne!(first.next, 0, "long chain must return a resume address");
        q.address = first.next;
        let second = cluster.serve_chain_fetch(&q).expect("second page");
        assert_eq!(second.records.len(), 4);
        // Pages do not overlap: the resume address continues the walk.
        assert!(first
            .records
            .iter()
            .all(|r| second.records.iter().all(|s| s.key != r.key)));
        cluster.shutdown();
    }
}
