//! In-process cluster assembly.
//!
//! The paper's deployment is a set of Azure VMs, a ZooKeeper ensemble, and an
//! Azure blob storage account.  [`Cluster`] assembles the equivalent inside
//! one process: a metadata store, a simulated client/server fabric, a
//! simulated migration fabric, a shared blob tier, and `n` servers whose
//! dispatch threads run on real OS threads.  Examples, integration tests and
//! the benchmark harness all build clusters through this type.

use std::sync::Arc;
use std::time::Duration;

use shadowfax_net::NetworkProfile;
use shadowfax_storage::SharedBlobTier;

use crate::client::ShadowfaxClient;
use crate::config::{ClientConfig, ServerConfig};
use crate::hash_range::{partition_space, HashRange, RangeSet};
use crate::meta::MetadataStore;
use crate::server::{KvNetwork, MigrationConnector, MigrationNetwork, Server, ServerHandle};
use crate::ServerId;

/// A server running in *another* OS process, registered with this process's
/// metadata store so local servers can route migrations (and clients can
/// route requests) to it.
#[derive(Debug, Clone)]
pub struct PeerServer {
    /// The peer's cluster-wide id.
    pub id: ServerId,
    /// The peer's address.  A socket address (`"10.0.0.7:4871"`) tells the
    /// RPC layer's migration connector to dial TCP instead of the
    /// in-process fabric.
    pub address: String,
    /// Number of dispatch threads the peer runs.
    pub threads: usize,
    /// The hash ranges the peer owns at startup (must agree with the peer
    /// process's own configuration).
    pub ranges: RangeSet,
}

/// Options controlling cluster assembly.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Per-server configuration template (the id field is overwritten).
    pub server_template: ServerConfig,
    /// Number of servers to start.
    pub servers: usize,
    /// Id of the first local server; server `i` gets id `base_id + i`.
    /// Non-zero values are used by multi-process deployments where each
    /// process hosts a different slice of the cluster.
    pub base_id: u32,
    /// Servers running in other OS processes, registered with this
    /// process's metadata store at startup.
    pub peers: Vec<PeerServer>,
    /// Network cost profile for the client/server fabric.
    pub kv_profile: NetworkProfile,
    /// Network cost profile for the server/server (migration) fabric.
    pub migration_profile: NetworkProfile,
    /// Capacity of each server's log space on the shared blob tier.
    pub shared_tier_capacity: u64,
    /// If `false`, only the server with id 0 owns ranges (every other
    /// server — in this process or a peer process — is an idle scale-out
    /// target, as in the Figure 10 experiments).
    pub assign_ranges_to_all: bool,
}

impl ClusterConfig {
    /// A small two-server configuration used by tests and examples: server 0
    /// owns the whole hash space, server 1 is an idle scale-out target.
    pub fn two_server_test() -> Self {
        ClusterConfig {
            server_template: ServerConfig::small_for_tests(ServerId(0)),
            servers: 2,
            base_id: 0,
            peers: Vec::new(),
            kv_profile: NetworkProfile::instant(),
            migration_profile: NetworkProfile::instant(),
            shared_tier_capacity: 1 << 30,
            assign_ranges_to_all: false,
        }
    }

    /// An `n`-server configuration with the hash space split evenly.
    pub fn balanced(n: usize) -> Self {
        ClusterConfig {
            server_template: ServerConfig::small_for_tests(ServerId(0)),
            servers: n,
            base_id: 0,
            peers: Vec::new(),
            kv_profile: NetworkProfile::instant(),
            migration_profile: NetworkProfile::instant(),
            shared_tier_capacity: 1 << 30,
            assign_ranges_to_all: true,
        }
    }
}

/// A running in-process cluster.
pub struct Cluster {
    meta: Arc<MetadataStore>,
    kv_net: Arc<KvNetwork>,
    mig_net: Arc<MigrationNetwork>,
    shared_tier: Arc<SharedBlobTier>,
    handles: Vec<ServerHandle>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("servers", &self.handles.len())
            .finish()
    }
}

impl Cluster {
    /// Builds and starts a cluster.
    pub fn start(config: ClusterConfig) -> Self {
        assert!(config.servers >= 1);
        let meta = MetadataStore::new();
        let kv_net: Arc<KvNetwork> = KvNetwork::new(config.kv_profile);
        let mig_net: Arc<MigrationNetwork> = MigrationNetwork::new(config.migration_profile);
        let shared_tier = SharedBlobTier::new(config.shared_tier_capacity);

        // Servers in other processes are registered first so ownership
        // lookups and migration routing see them from the start.
        for peer in &config.peers {
            meta.register_server(
                peer.id,
                peer.address.clone(),
                peer.threads,
                peer.ranges.clone(),
            );
        }

        // Initial ownership: either split evenly over every local server or
        // give everything to the server with id 0 and leave the rest idle
        // (scale-out targets).  Partition slots are indexed by global id, so
        // a process hosting ids ≥ 1 starts them idle under the default
        // "server 0 owns everything" layout.
        let owners = if config.assign_ranges_to_all {
            config.servers
        } else {
            1
        };
        let parts = partition_space(owners);

        let mut handles = Vec::with_capacity(config.servers);
        for i in 0..config.servers {
            let mut server_config = config.server_template.clone();
            let global_id = config.base_id + i as u32;
            server_config.id = ServerId(global_id);
            let ranges = match parts.get(global_id as usize) {
                Some(part) => RangeSet::from_ranges([*part]),
                None => RangeSet::empty(),
            };
            let server = Server::new(
                server_config,
                ranges,
                Arc::clone(&meta),
                Arc::clone(&kv_net),
                Arc::clone(&mig_net),
                Arc::clone(&shared_tier),
            );
            handles.push(server.spawn_threads());
        }
        Cluster {
            meta,
            kv_net,
            mig_net,
            shared_tier,
            handles,
        }
    }

    /// The metadata store.
    pub fn meta(&self) -> &Arc<MetadataStore> {
        &self.meta
    }

    /// The client/server fabric (used to build additional clients).
    pub fn kv_network(&self) -> &Arc<KvNetwork> {
        &self.kv_net
    }

    /// The server/server migration fabric.
    pub fn migration_network(&self) -> &Arc<MigrationNetwork> {
        &self.mig_net
    }

    /// The shared blob tier.
    pub fn shared_tier(&self) -> &Arc<SharedBlobTier> {
        &self.shared_tier
    }

    /// Installs a migration connector on every local server, replacing the
    /// default in-process fabric.  The RPC layer uses this to route
    /// migrations to peer servers over TCP.
    pub fn set_migration_connector(&self, connector: Arc<dyn MigrationConnector>) {
        for handle in &self.handles {
            handle
                .server()
                .set_migration_connector(Arc::clone(&connector));
        }
    }

    /// The running servers.
    pub fn servers(&self) -> Vec<Arc<Server>> {
        self.handles
            .iter()
            .map(|h| Arc::clone(h.server()))
            .collect()
    }

    /// One server by id.
    pub fn server(&self, id: ServerId) -> Option<Arc<Server>> {
        self.handles
            .iter()
            .map(|h| h.server())
            .find(|s| s.id() == id)
            .cloned()
    }

    /// Builds a client bound to this cluster.
    pub fn client(&self, config: ClientConfig) -> ShadowfaxClient {
        ShadowfaxClient::new(config, Arc::clone(&self.meta), Arc::clone(&self.kv_net))
    }

    /// Total operations completed across every server.
    pub fn total_completed_ops(&self) -> u64 {
        self.handles
            .iter()
            .map(|h| h.server().completed_ops())
            .sum()
    }

    /// Starts migrating `fraction` of `source`'s first owned range to
    /// `target`.  Returns the migration id.
    pub fn migrate_fraction(
        &self,
        source: ServerId,
        target: ServerId,
        fraction: f64,
    ) -> Result<u64, String> {
        let src = self.server(source).ok_or("unknown source server")?;
        let owned = src.owned_ranges();
        let first = owned
            .ranges()
            .first()
            .copied()
            .ok_or("source owns no ranges")?;
        let moving = first.take_fraction(fraction);
        src.start_migration(vec![moving], target)
    }

    /// Starts migrating an explicit set of ranges.
    pub fn migrate_ranges(
        &self,
        source: ServerId,
        target: ServerId,
        ranges: Vec<HashRange>,
    ) -> Result<u64, String> {
        let src = self.server(source).ok_or("unknown source server")?;
        src.start_migration(ranges, target)
    }

    /// Removes and returns the handle of server `id`, if it is running.
    /// Used by crash simulation ([`Cluster::crash_server`]) and scale-in.
    pub(crate) fn take_handle(&mut self, id: ServerId) -> Option<ServerHandle> {
        let pos = self.handles.iter().position(|h| h.server().id() == id)?;
        Some(self.handles.remove(pos))
    }

    /// Adds a newly started server to the cluster (used by crash recovery).
    pub(crate) fn push_handle(&mut self, handle: ServerHandle) {
        self.handles.push(handle);
    }

    /// Adds a brand-new, initially empty server to the running cluster — the
    /// "provision a new VM" half of elastic scale-out.  The server starts
    /// with no owned ranges; move load onto it with
    /// [`Cluster::migrate_fraction`] or [`Cluster::migrate_ranges`].
    pub fn add_server(&mut self, config: ServerConfig) -> Result<ServerId, String> {
        if self.server(config.id).is_some() {
            return Err(format!("server {} is already running", config.id));
        }
        let server = Server::new(
            config,
            RangeSet::empty(),
            Arc::clone(&self.meta),
            Arc::clone(&self.kv_net),
            Arc::clone(&self.mig_net),
            Arc::clone(&self.shared_tier),
        );
        let id = server.id();
        self.handles.push(server.spawn_threads());
        Ok(id)
    }

    /// Elastic scale-in: migrates every range `from` owns to `to`, waits for
    /// the migration to become durable, deregisters `from` from the metadata
    /// store, and stops its dispatch threads.
    ///
    /// # Errors
    ///
    /// Fails if either server is unknown, if the migration cannot start, or
    /// if it does not complete within `timeout` (in which case the server is
    /// left running and still registered).
    pub fn scale_in(
        &mut self,
        from: ServerId,
        to: ServerId,
        timeout: Duration,
    ) -> Result<(), String> {
        let src = self
            .server(from)
            .ok_or_else(|| format!("unknown server {from}"))?;
        self.server(to)
            .ok_or_else(|| format!("unknown server {to}"))?;
        let ranges = src.owned_ranges().ranges().to_vec();
        if !ranges.is_empty() {
            self.migrate_ranges(from, to, ranges)?;
            if !self.wait_for_migrations(timeout) {
                return Err(format!(
                    "scale-in migration from {from} to {to} did not complete within {timeout:?}"
                ));
            }
        }
        self.meta.deregister_server(from);
        let handle = self
            .take_handle(from)
            .ok_or_else(|| format!("unknown server {from}"))?;
        handle.shutdown();
        Ok(())
    }

    /// Waits until no server has a migration in flight (or the timeout
    /// expires).  Returns `true` if the cluster became quiescent.
    pub fn wait_for_migrations(&self, timeout: Duration) -> bool {
        let start = std::time::Instant::now();
        loop {
            let busy = self
                .handles
                .iter()
                .any(|h| h.server().migration_in_progress())
                || self.meta.pending_migrations() > 0;
            if !busy {
                return true;
            }
            if start.elapsed() > timeout {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Stops every server and waits for its threads to exit.
    pub fn shutdown(self) {
        for h in &self.handles {
            h.server().request_shutdown();
        }
        for h in self.handles {
            h.shutdown();
        }
    }
}
