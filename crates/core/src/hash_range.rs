//! Hash-range ownership.
//!
//! Shadowfax hash-partitions records across servers (paper §3): each server
//! owns a set of half-open ranges `[start, end)` of the 64-bit key-hash
//! space, and ownership moves between servers in units of ranges.  The hash
//! used is exactly the one the FASTER index uses for bucket selection
//! ([`shadowfax_faster::KeyHash`]), so clients, servers, and migration all
//! agree on which range a key belongs to.

use shadowfax_faster::KeyHash;

/// A half-open range `[start, end)` of the 64-bit hash space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HashRange {
    /// Inclusive lower bound.
    pub start: u64,
    /// Exclusive upper bound (`u64::MAX` is treated as "to the top", and the
    /// top value itself is included in the final range so the whole space is
    /// coverable).
    pub end: u64,
}

impl HashRange {
    /// The full hash space.
    pub const FULL: HashRange = HashRange {
        start: 0,
        end: u64::MAX,
    };

    /// Creates a range.  `start` must not exceed `end`.
    pub fn new(start: u64, end: u64) -> Self {
        assert!(start <= end, "invalid hash range [{start}, {end})");
        HashRange { start, end }
    }

    /// `true` if `hash` falls within this range.
    pub fn contains(&self, hash: u64) -> bool {
        hash >= self.start && (hash < self.end || (self.end == u64::MAX && hash == u64::MAX))
    }

    /// `true` if `key`'s hash falls within this range.
    pub fn contains_key(&self, key: u64) -> bool {
        self.contains(KeyHash::of(key).raw())
    }

    /// The number of hash values covered (saturating).
    pub fn width(&self) -> u64 {
        self.end - self.start
    }

    /// Splits the range into `n` nearly equal sub-ranges.
    pub fn split(&self, n: usize) -> Vec<HashRange> {
        assert!(n > 0);
        let n64 = n as u64;
        let step = self.width() / n64;
        let mut out = Vec::with_capacity(n);
        let mut start = self.start;
        for i in 0..n64 {
            let end = if i == n64 - 1 { self.end } else { start + step };
            out.push(HashRange::new(start, end));
            start = end;
        }
        out
    }

    /// The prefix of this range covering roughly `fraction` of its width
    /// (used by the scale-out experiments, which migrate "10% of a server's
    /// hash range").
    pub fn take_fraction(&self, fraction: f64) -> HashRange {
        assert!((0.0..=1.0).contains(&fraction));
        let w = (self.width() as f64 * fraction) as u64;
        HashRange::new(self.start, self.start + w)
    }

    /// `true` if the two ranges overlap.
    pub fn overlaps(&self, other: &HashRange) -> bool {
        self.start < other.end && other.start < self.end
    }
}

impl std::fmt::Display for HashRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:#018x}, {:#018x})", self.start, self.end)
    }
}

/// A set of owned ranges with membership and set-algebra helpers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RangeSet {
    ranges: Vec<HashRange>,
}

impl RangeSet {
    /// An empty set.
    pub fn empty() -> Self {
        RangeSet { ranges: Vec::new() }
    }

    /// A set holding the full hash space.
    pub fn full() -> Self {
        RangeSet {
            ranges: vec![HashRange::FULL],
        }
    }

    /// Builds a set from ranges, normalizing (sorting and merging adjacent
    /// ranges).
    pub fn from_ranges(ranges: impl IntoIterator<Item = HashRange>) -> Self {
        let mut set = RangeSet {
            ranges: ranges.into_iter().filter(|r| r.width() > 0).collect(),
        };
        set.normalize();
        set
    }

    fn normalize(&mut self) {
        self.ranges.sort_by_key(|r| r.start);
        let mut merged: Vec<HashRange> = Vec::with_capacity(self.ranges.len());
        for r in self.ranges.drain(..) {
            match merged.last_mut() {
                Some(last) if last.end >= r.start => {
                    last.end = last.end.max(r.end);
                }
                _ => merged.push(r),
            }
        }
        self.ranges = merged;
    }

    /// The ranges in the set, sorted and non-overlapping.
    pub fn ranges(&self) -> &[HashRange] {
        &self.ranges
    }

    /// Number of disjoint ranges ("hash splits" in Figure 15).
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Membership test for a raw hash value.  Binary search over the sorted
    /// ranges — this is the "trie of owned hash ranges" lookup the paper's
    /// Hash Validation baseline performs per key (Figure 15).
    pub fn contains(&self, hash: u64) -> bool {
        self.ranges
            .binary_search_by(|r| {
                if hash < r.start {
                    std::cmp::Ordering::Greater
                } else if r.contains(hash) {
                    std::cmp::Ordering::Equal
                } else {
                    std::cmp::Ordering::Less
                }
            })
            .is_ok()
    }

    /// Membership test for a key.
    pub fn contains_key(&self, key: u64) -> bool {
        self.contains(KeyHash::of(key).raw())
    }

    /// Adds ranges to the set.
    pub fn add(&mut self, ranges: &[HashRange]) {
        self.ranges.extend_from_slice(ranges);
        self.normalize();
    }

    /// Removes ranges from the set (exact or partial overlaps are handled).
    pub fn remove(&mut self, ranges: &[HashRange]) {
        for r in ranges {
            let mut next = Vec::with_capacity(self.ranges.len() + 1);
            for own in self.ranges.drain(..) {
                if !own.overlaps(r) {
                    next.push(own);
                    continue;
                }
                if own.start < r.start {
                    next.push(HashRange::new(own.start, r.start));
                }
                if r.end < own.end {
                    next.push(HashRange::new(r.end, own.end));
                }
            }
            self.ranges = next;
        }
        self.normalize();
    }

    /// Sum of the widths of all ranges.
    pub fn total_width(&self) -> u64 {
        self.ranges.iter().map(|r| r.width()).sum()
    }
}

/// Partitions the full hash space evenly across `n` servers, returning one
/// range per server (cluster bootstrap).
pub fn partition_space(n: usize) -> Vec<HashRange> {
    HashRange::FULL.split(n)
}

/// Partitions the full hash space evenly across an arbitrary set of global
/// server ids (local servers and peers alike), assigning slices in
/// ascending id order.  This is the multi-process generalisation of
/// [`partition_space`]: every process that knows the same id set derives
/// the same assignment, no matter which ids it hosts.
pub fn partition_space_among(ids: &[crate::ServerId]) -> Vec<(crate::ServerId, HashRange)> {
    let mut sorted: Vec<crate::ServerId> = ids.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let parts = partition_space(sorted.len().max(1));
    sorted.into_iter().zip(parts).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_respects_bounds() {
        let r = HashRange::new(100, 200);
        assert!(r.contains(100));
        assert!(r.contains(199));
        assert!(!r.contains(200));
        assert!(!r.contains(99));
    }

    #[test]
    fn full_range_contains_everything() {
        assert!(HashRange::FULL.contains(0));
        assert!(HashRange::FULL.contains(u64::MAX));
        assert!(HashRange::FULL.contains_key(42));
    }

    #[test]
    fn split_covers_whole_range_without_overlap() {
        let parts = HashRange::FULL.split(8);
        assert_eq!(parts.len(), 8);
        assert_eq!(parts[0].start, 0);
        assert_eq!(parts[7].end, u64::MAX);
        for w in parts.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        // Every hash belongs to exactly one part.
        for h in [0u64, 1, u64::MAX / 3, u64::MAX / 2, u64::MAX - 1, u64::MAX] {
            assert_eq!(parts.iter().filter(|p| p.contains(h)).count(), 1);
        }
    }

    #[test]
    fn take_fraction_is_proportional() {
        let r = HashRange::new(0, 1000);
        let tenth = r.take_fraction(0.1);
        assert_eq!(tenth, HashRange::new(0, 100));
    }

    #[test]
    fn rangeset_membership_and_splits() {
        let set = RangeSet::from_ranges(HashRange::FULL.split(16));
        assert_eq!(set.len(), 1, "adjacent splits merge back into one range");
        let alternating: Vec<HashRange> =
            HashRange::FULL.split(16).into_iter().step_by(2).collect();
        let set = RangeSet::from_ranges(alternating.clone());
        assert_eq!(set.len(), 8);
        for r in &alternating {
            assert!(set.contains(r.start));
            assert!(set.contains(r.start + r.width() / 2));
        }
        // Gaps are not contained.
        let gaps: Vec<HashRange> = HashRange::FULL
            .split(16)
            .into_iter()
            .skip(1)
            .step_by(2)
            .collect();
        for g in &gaps {
            assert!(!set.contains(g.start + 1));
        }
    }

    #[test]
    fn rangeset_add_and_remove() {
        let mut set = RangeSet::full();
        let removed = HashRange::new(1000, 2000);
        set.remove(&[removed]);
        assert!(!set.contains(1500));
        assert!(set.contains(999));
        assert!(set.contains(2000));
        assert_eq!(set.len(), 2);
        set.add(&[removed]);
        assert!(set.contains(1500));
        assert_eq!(set.len(), 1);
        assert_eq!(set, RangeSet::full());
    }

    #[test]
    fn remove_partial_overlap() {
        let mut set = RangeSet::from_ranges([HashRange::new(0, 100)]);
        set.remove(&[HashRange::new(50, 150)]);
        assert_eq!(set.ranges(), &[HashRange::new(0, 50)]);
    }

    #[test]
    fn partition_space_is_exhaustive() {
        for n in [1usize, 2, 3, 8] {
            let parts = partition_space(n);
            assert_eq!(parts.len(), n);
            let set = RangeSet::from_ranges(parts);
            assert_eq!(set.total_width(), u64::MAX);
        }
    }

    #[test]
    fn partition_space_among_sorts_dedups_and_covers() {
        use crate::ServerId;
        let parts = partition_space_among(&[ServerId(5), ServerId(0), ServerId(2), ServerId(5)]);
        assert_eq!(parts.len(), 3);
        assert_eq!(
            parts.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![ServerId(0), ServerId(2), ServerId(5)]
        );
        assert_eq!(parts[0].1.start, 0);
        assert_eq!(parts[2].1.end, u64::MAX);
        for w in parts.windows(2) {
            assert_eq!(w[0].1.end, w[1].1.start);
        }
        assert!(partition_space_among(&[]).is_empty());
    }

    #[test]
    fn width_and_total_width() {
        let r = HashRange::new(10, 110);
        assert_eq!(r.width(), 100);
        let set = RangeSet::from_ranges([HashRange::new(0, 10), HashRange::new(20, 30)]);
        assert_eq!(set.total_width(), 20);
    }

    #[test]
    #[should_panic(expected = "invalid hash range")]
    fn inverted_range_panics() {
        let _ = HashRange::new(10, 5);
    }
}
