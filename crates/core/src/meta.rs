//! The fault-tolerant external metadata store (paper §3: "a fault-tolerant,
//! external metadata store (e.g. ZooKeeper) durably maintains these view
//! numbers along with mappings from hash ranges to servers").
//!
//! The protocol only needs a handful of linearizable operations from the
//! store: register a server, atomically transfer ownership of a set of hash
//! ranges (incrementing both servers' view numbers and recording a migration
//! dependency), mark a migration role complete, cancel a migration, and read
//! back a consistent snapshot of the ownership map.  A mutex-protected map
//! provides exactly those semantics in-process; nothing in the rest of the
//! system can tell the difference from a real ZooKeeper ensemble, which is
//! why this substitution is sound (see DESIGN.md §1).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::hash_range::{HashRange, RangeSet};
use crate::ServerId;

/// A migration dependency recorded while a migration is in flight
/// (paper §3.3.1): recovery of either server must consult it until both
/// completion flags are set, after which it is garbage collected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationDep {
    /// Unique id of the migration.
    pub id: u64,
    /// Server losing the ranges.
    pub source: ServerId,
    /// Server gaining the ranges.
    pub target: ServerId,
    /// The ranges being moved.
    pub ranges: Vec<HashRange>,
    /// Set when the source has checkpointed and finished its role.
    pub source_complete: bool,
    /// Set when the target has checkpointed and finished its role.
    pub target_complete: bool,
    /// Set if the migration was cancelled (crash during migration).
    pub cancelled: bool,
}

impl MigrationDep {
    /// `true` once both sides have completed (the dependency can be GC'd).
    pub fn is_complete(&self) -> bool {
        self.source_complete && self.target_complete
    }
}

/// Per-server state kept by the metadata store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerMeta {
    /// The server's strictly increasing view number.
    pub view: u64,
    /// The hash ranges the server owns.
    pub owned: RangeSet,
    /// Base network address ("sv3"); thread `t` listens at `"sv3/t{t}"`.
    pub address: String,
    /// Number of dispatch threads the server runs (clients pick one).
    pub threads: usize,
}

/// A consistent snapshot of the cluster's ownership mappings, cached by
/// clients and refreshed on batch rejection.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OwnershipSnapshot {
    /// Per-server view, ranges, address, and thread count.
    pub servers: HashMap<ServerId, ServerMeta>,
}

impl OwnershipSnapshot {
    /// The server owning `hash`, with its view number, if any.
    pub fn owner_of(&self, hash: u64) -> Option<(ServerId, u64)> {
        self.servers
            .iter()
            .find(|(_, m)| m.owned.contains(hash))
            .map(|(id, m)| (*id, m.view))
    }

    /// The metadata of one server.
    pub fn server(&self, id: ServerId) -> Option<&ServerMeta> {
        self.servers.get(&id)
    }
}

#[derive(Debug, Default)]
struct MetaInner {
    servers: HashMap<ServerId, ServerMeta>,
    migrations: Vec<MigrationDep>,
    /// Cancelled migrations, retained so status queries can distinguish
    /// "completed and garbage collected" from "rolled back".  Cancellations
    /// are rare (crash recovery), so retention is unbounded — evicting one
    /// would make its status read as a success.
    cancelled: Vec<MigrationDep>,
    next_migration_id: u64,
}

/// The in-process metadata store.
#[derive(Debug, Default)]
pub struct MetadataStore {
    inner: Mutex<MetaInner>,
}

impl MetadataStore {
    /// Creates an empty store.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Registers (or re-registers) a server with its initial ownership.
    pub fn register_server(
        &self,
        id: ServerId,
        address: impl Into<String>,
        threads: usize,
        owned: RangeSet,
    ) {
        let mut inner = self.inner.lock();
        inner.servers.insert(
            id,
            ServerMeta {
                view: 1,
                owned,
                address: address.into(),
                threads,
            },
        );
    }

    /// Registers a server like [`MetadataStore::register_server`], but
    /// validates the registration first: re-registering an id that is
    /// already present is rejected (typed error, not a silent overwrite),
    /// as is an ownership claim overlapping another server's ranges.  This
    /// is the registration path cluster assembly uses; the unchecked
    /// variant remains for crash recovery, which deliberately re-registers
    /// a rebooted server over its old entry.
    pub fn try_register_server(
        &self,
        id: ServerId,
        address: impl Into<String>,
        threads: usize,
        owned: RangeSet,
    ) -> Result<(), MetaError> {
        let mut inner = self.inner.lock();
        if inner.servers.contains_key(&id) {
            return Err(MetaError::AlreadyRegistered(id));
        }
        for (other, meta) in &inner.servers {
            for theirs in meta.owned.ranges() {
                for ours in owned.ranges() {
                    if ours.overlaps(theirs) {
                        return Err(MetaError::OwnershipOverlap {
                            server: id,
                            other: *other,
                            range: HashRange::new(
                                ours.start.max(theirs.start),
                                ours.end.min(theirs.end),
                            ),
                        });
                    }
                }
            }
        }
        inner.servers.insert(
            id,
            ServerMeta {
                view: 1,
                owned,
                address: address.into(),
                threads,
            },
        );
        Ok(())
    }

    /// Removes a server (scale-in after its ranges have been migrated away).
    pub fn deregister_server(&self, id: ServerId) {
        self.inner.lock().servers.remove(&id);
    }

    /// The current view number of `id`.
    pub fn view_of(&self, id: ServerId) -> Option<u64> {
        self.inner.lock().servers.get(&id).map(|m| m.view)
    }

    /// A consistent snapshot of all ownership mappings.
    pub fn snapshot(&self) -> OwnershipSnapshot {
        OwnershipSnapshot {
            servers: self.inner.lock().servers.clone(),
        }
    }

    /// The `(server, view)` owning `hash`, if any.
    pub fn owner_of(&self, hash: u64) -> Option<(ServerId, u64)> {
        let inner = self.inner.lock();
        inner
            .servers
            .iter()
            .find(|(_, m)| m.owned.contains(hash))
            .map(|(id, m)| (*id, m.view))
    }

    /// Atomically moves `ranges` from `source` to `target`: both servers'
    /// view numbers are incremented, the ownership mappings updated, and a
    /// migration dependency recorded (paper §3.3 "Sampling" step 1).
    ///
    /// Returns `(migration id, new source view, new target view)`.
    pub fn transfer_ownership(
        &self,
        source: ServerId,
        target: ServerId,
        ranges: &[HashRange],
    ) -> Result<(u64, u64, u64), MetaError> {
        let mut inner = self.inner.lock();
        {
            let src = inner
                .servers
                .get(&source)
                .ok_or(MetaError::UnknownServer(source))?;
            for r in ranges {
                if !r
                    .split(2)
                    .iter()
                    .all(|half| src.owned.contains(half.start) || half.width() == 0)
                {
                    return Err(MetaError::NotOwned {
                        server: source,
                        range: *r,
                    });
                }
            }
            inner
                .servers
                .get(&target)
                .ok_or(MetaError::UnknownServer(target))?;
        }
        let id = inner.next_migration_id;
        inner.next_migration_id += 1;
        let src = inner.servers.get_mut(&source).unwrap();
        src.owned.remove(ranges);
        src.view += 1;
        let new_source_view = src.view;
        let tgt = inner.servers.get_mut(&target).unwrap();
        tgt.owned.add(ranges);
        tgt.view += 1;
        let new_target_view = tgt.view;
        inner.migrations.push(MigrationDep {
            id,
            source,
            target,
            ranges: ranges.to_vec(),
            source_complete: false,
            target_complete: false,
            cancelled: false,
        });
        Ok((id, new_source_view, new_target_view))
    }

    /// Marks one side of a migration complete.  Once both sides are complete
    /// the dependency is garbage collected.  Returns `true` if the dependency
    /// is now fully resolved.
    pub fn mark_complete(&self, migration_id: u64, server: ServerId) -> Result<bool, MetaError> {
        let mut inner = self.inner.lock();
        let dep = inner
            .migrations
            .iter_mut()
            .find(|d| d.id == migration_id)
            .ok_or(MetaError::UnknownMigration(migration_id))?;
        if dep.source == server {
            dep.source_complete = true;
        } else if dep.target == server {
            dep.target_complete = true;
        } else {
            return Err(MetaError::UnknownServer(server));
        }
        let done = dep.is_complete();
        if done {
            inner.migrations.retain(|d| d.id != migration_id);
        }
        Ok(done)
    }

    /// Cancels an in-flight migration (paper §3.3.1): ownership of the ranges
    /// is transferred back to the source and both views advance again, so
    /// both servers can be rolled back to their pre-migration checkpoints.
    pub fn cancel_migration(&self, migration_id: u64) -> Result<MigrationDep, MetaError> {
        let mut inner = self.inner.lock();
        let pos = inner
            .migrations
            .iter()
            .position(|d| d.id == migration_id)
            .ok_or(MetaError::UnknownMigration(migration_id))?;
        let mut dep = inner.migrations.remove(pos);
        dep.cancelled = true;
        let ranges = dep.ranges.clone();
        if let Some(tgt) = inner.servers.get_mut(&dep.target) {
            tgt.owned.remove(&ranges);
            tgt.view += 1;
        }
        if let Some(src) = inner.servers.get_mut(&dep.source) {
            src.owned.add(&ranges);
            src.view += 1;
        }
        inner.cancelled.push(dep.clone());
        Ok(dep)
    }

    /// Any migration dependency involving `server` that has not completed
    /// (consulted during crash recovery).
    pub fn pending_dependency_for(&self, server: ServerId) -> Option<MigrationDep> {
        self.inner
            .lock()
            .migrations
            .iter()
            .find(|d| (d.source == server || d.target == server) && !d.is_complete())
            .cloned()
    }

    /// Number of unresolved migration dependencies.
    pub fn pending_migrations(&self) -> usize {
        self.inner.lock().migrations.len()
    }

    /// The state of migration `id`: `Ok(Some(dep))` while it is in flight
    /// or was cancelled (`dep.cancelled` distinguishes them), `Ok(None)`
    /// once both sides completed (the dependency has been garbage
    /// collected), and `Err` if no such migration was ever issued.
    pub fn migration_state(&self, id: u64) -> Result<Option<MigrationDep>, MetaError> {
        let inner = self.inner.lock();
        if id >= inner.next_migration_id {
            return Err(MetaError::UnknownMigration(id));
        }
        Ok(inner
            .migrations
            .iter()
            .chain(inner.cancelled.iter())
            .find(|d| d.id == id)
            .cloned())
    }
}

/// Errors returned by the metadata store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetaError {
    /// The server is not registered.
    UnknownServer(ServerId),
    /// The server id is already registered (checked registration only).
    AlreadyRegistered(ServerId),
    /// The migration id does not exist.
    UnknownMigration(u64),
    /// The source does not own the requested range.
    NotOwned {
        /// The server that was asked to give up the range.
        server: ServerId,
        /// The range it does not own.
        range: HashRange,
    },
    /// A registration claimed ranges another server already owns (checked
    /// registration only).
    OwnershipOverlap {
        /// The server being registered.
        server: ServerId,
        /// The server whose ownership it collides with.
        other: ServerId,
        /// Where the claims collide.
        range: HashRange,
    },
}

impl std::fmt::Display for MetaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetaError::UnknownServer(s) => write!(f, "unknown server {s:?}"),
            MetaError::AlreadyRegistered(s) => write!(f, "server {s:?} already registered"),
            MetaError::UnknownMigration(id) => write!(f, "unknown migration {id}"),
            MetaError::NotOwned { server, range } => {
                write!(f, "server {server:?} does not own range {range}")
            }
            MetaError::OwnershipOverlap {
                server,
                other,
                range,
            } => write!(
                f,
                "registration of {server:?} overlaps {other:?} at {range}"
            ),
        }
    }
}

impl std::error::Error for MetaError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash_range::partition_space;

    fn two_server_store() -> Arc<MetadataStore> {
        let meta = MetadataStore::new();
        let parts = partition_space(2);
        meta.register_server(ServerId(0), "sv0", 2, RangeSet::from_ranges([parts[0]]));
        meta.register_server(ServerId(1), "sv1", 2, RangeSet::from_ranges([parts[1]]));
        meta
    }

    #[test]
    fn registration_and_ownership_lookup() {
        let meta = two_server_store();
        assert_eq!(meta.view_of(ServerId(0)), Some(1));
        let (owner, view) = meta.owner_of(0).unwrap();
        assert_eq!(owner, ServerId(0));
        assert_eq!(view, 1);
        let (owner, _) = meta.owner_of(u64::MAX).unwrap();
        assert_eq!(owner, ServerId(1));
    }

    #[test]
    fn transfer_increments_both_views_and_moves_ranges() {
        let meta = two_server_store();
        let moved = partition_space(2)[0].take_fraction(0.1);
        let (id, src_view, tgt_view) = meta
            .transfer_ownership(ServerId(0), ServerId(1), &[moved])
            .unwrap();
        assert_eq!(src_view, 2);
        assert_eq!(tgt_view, 2);
        assert_eq!(meta.pending_migrations(), 1);
        // The moved hash now resolves to the target.
        let (owner, view) = meta.owner_of(moved.start).unwrap();
        assert_eq!(owner, ServerId(1));
        assert_eq!(view, 2);
        // The rest of server 0's range is untouched.
        let (owner, _) = meta.owner_of(moved.end + 1).unwrap();
        assert_eq!(owner, ServerId(0));
        // Completing both sides garbage-collects the dependency.
        assert!(!meta.mark_complete(id, ServerId(0)).unwrap());
        assert!(meta.mark_complete(id, ServerId(1)).unwrap());
        assert_eq!(meta.pending_migrations(), 0);
    }

    #[test]
    fn transfer_of_unowned_range_fails() {
        let meta = two_server_store();
        let not_owned = partition_space(2)[1];
        let err = meta
            .transfer_ownership(ServerId(0), ServerId(1), &[not_owned])
            .unwrap_err();
        assert!(matches!(err, MetaError::NotOwned { .. }));
    }

    #[test]
    fn cancellation_returns_ranges_to_source() {
        let meta = two_server_store();
        let moved = partition_space(2)[0].take_fraction(0.25);
        let (id, ..) = meta
            .transfer_ownership(ServerId(0), ServerId(1), &[moved])
            .unwrap();
        let dep = meta.cancel_migration(id).unwrap();
        assert!(dep.cancelled);
        let (owner, view) = meta.owner_of(moved.start).unwrap();
        assert_eq!(owner, ServerId(0));
        assert_eq!(view, 3, "cancellation advances the view again");
        assert_eq!(meta.pending_migrations(), 0);
    }

    #[test]
    fn pending_dependency_visible_until_both_complete() {
        let meta = two_server_store();
        let moved = partition_space(2)[0].take_fraction(0.1);
        let (id, ..) = meta
            .transfer_ownership(ServerId(0), ServerId(1), &[moved])
            .unwrap();
        assert!(meta.pending_dependency_for(ServerId(0)).is_some());
        assert!(meta.pending_dependency_for(ServerId(1)).is_some());
        meta.mark_complete(id, ServerId(0)).unwrap();
        assert!(meta.pending_dependency_for(ServerId(1)).is_some());
        meta.mark_complete(id, ServerId(1)).unwrap();
        assert!(meta.pending_dependency_for(ServerId(0)).is_none());
    }

    #[test]
    fn snapshot_is_consistent_copy() {
        let meta = two_server_store();
        let snap = meta.snapshot();
        assert_eq!(snap.servers.len(), 2);
        assert_eq!(snap.owner_of(0).unwrap().0, ServerId(0));
        // Later changes do not affect the snapshot.
        let moved = partition_space(2)[0].take_fraction(0.5);
        meta.transfer_ownership(ServerId(0), ServerId(1), &[moved])
            .unwrap();
        assert_eq!(snap.owner_of(moved.start).unwrap().0, ServerId(0));
        assert_eq!(
            meta.snapshot().owner_of(moved.start).unwrap().0,
            ServerId(1)
        );
    }

    #[test]
    fn checked_registration_rejects_duplicates_and_overlap() {
        let meta = MetadataStore::new();
        let parts = partition_space(2);
        meta.try_register_server(ServerId(0), "sv0", 2, RangeSet::from_ranges([parts[0]]))
            .expect("first registration");
        assert_eq!(
            meta.try_register_server(ServerId(0), "sv0", 2, RangeSet::empty()),
            Err(MetaError::AlreadyRegistered(ServerId(0)))
        );
        // Overlapping claim: server 1 tries to own the whole space while
        // server 0 holds the bottom half.
        match meta.try_register_server(ServerId(1), "sv1", 2, RangeSet::full()) {
            Err(MetaError::OwnershipOverlap { server, other, .. }) => {
                assert_eq!(server, ServerId(1));
                assert_eq!(other, ServerId(0));
            }
            other => panic!("expected OwnershipOverlap, got {other:?}"),
        }
        // The rejected registration left no trace.
        assert_eq!(meta.view_of(ServerId(1)), None);
        // A disjoint claim goes through.
        meta.try_register_server(ServerId(1), "sv1", 2, RangeSet::from_ranges([parts[1]]))
            .expect("disjoint registration");
    }

    #[test]
    fn unknown_server_errors() {
        let meta = MetadataStore::new();
        assert_eq!(meta.view_of(ServerId(9)), None);
        assert!(matches!(
            meta.transfer_ownership(ServerId(0), ServerId(1), &[HashRange::FULL]),
            Err(MetaError::UnknownServer(_))
        ));
        assert!(matches!(
            meta.mark_complete(0, ServerId(0)),
            Err(MetaError::UnknownMigration(0))
        ));
    }
}
