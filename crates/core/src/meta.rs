//! The fault-tolerant external metadata store (paper §3: "a fault-tolerant,
//! external metadata store (e.g. ZooKeeper) durably maintains these view
//! numbers along with mappings from hash ranges to servers").
//!
//! The protocol only needs a handful of linearizable operations from the
//! store: register a server, atomically transfer ownership of a set of hash
//! ranges (incrementing both servers' view numbers and recording a migration
//! dependency), mark a migration role complete, cancel a migration, and read
//! back a consistent snapshot of the ownership map.  A mutex-protected map
//! provides exactly those semantics in-process; nothing in the rest of the
//! system can tell the difference from a real ZooKeeper ensemble, which is
//! why this substitution is sound (see DESIGN.md §1).
//!
//! Multi-process clusters replicate the store: every mutation bumps a
//! **cluster epoch**, and [`MetadataStore::replica`] /
//! [`MetadataStore::merge_replica`] export and merge epoch-tagged copies of
//! the whole store.  The merge is convergent — server entries are resolved
//! by view number (ties broken deterministically on content), migration
//! dependency flags only ever gain (`cancelled` / completion flags OR
//! together), and the epoch joins upward — so a broker that pulls every
//! peer's replica and fans the merged result back out drives all processes
//! to the same map.  Migration ids are namespaced by source server id so
//! ids minted by different processes never collide when replicas meet.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::hash_range::{HashRange, RangeSet};
use crate::ServerId;

/// A migration dependency recorded while a migration is in flight
/// (paper §3.3.1): recovery of either server must consult it until both
/// completion flags are set, after which it is garbage collected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationDep {
    /// Unique id of the migration.
    pub id: u64,
    /// Server losing the ranges.
    pub source: ServerId,
    /// Server gaining the ranges.
    pub target: ServerId,
    /// The ranges being moved.
    pub ranges: Vec<HashRange>,
    /// Set when the source has checkpointed and finished its role.
    pub source_complete: bool,
    /// Set when the target has checkpointed and finished its role.
    pub target_complete: bool,
    /// Set if the migration was cancelled (crash during migration).
    pub cancelled: bool,
}

impl MigrationDep {
    /// `true` once both sides have completed (the dependency can be GC'd).
    pub fn is_complete(&self) -> bool {
        self.source_complete && self.target_complete
    }
}

/// Per-server state kept by the metadata store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerMeta {
    /// The server's strictly increasing view number.
    pub view: u64,
    /// The hash ranges the server owns.
    pub owned: RangeSet,
    /// Base network address ("sv3"); thread `t` listens at `"sv3/t{t}"`.
    pub address: String,
    /// Number of dispatch threads the server runs (clients pick one).
    pub threads: usize,
}

/// A consistent snapshot of the cluster's ownership mappings, cached by
/// clients and refreshed on batch rejection.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OwnershipSnapshot {
    /// Per-server view, ranges, address, and thread count.
    pub servers: HashMap<ServerId, ServerMeta>,
}

impl OwnershipSnapshot {
    /// The server owning `hash`, with its view number, if any.
    pub fn owner_of(&self, hash: u64) -> Option<(ServerId, u64)> {
        self.servers
            .iter()
            .find(|(_, m)| m.owned.contains(hash))
            .map(|(id, m)| (*id, m.view))
    }

    /// The metadata of one server.
    pub fn server(&self, id: ServerId) -> Option<&ServerMeta> {
        self.servers.get(&id)
    }
}

/// A full, epoch-tagged copy of the metadata store, exported for
/// replication.  Server entries are sorted by id and dependencies by
/// migration id so the encoding is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetaReplica {
    /// The cluster epoch at the exporting store.
    pub epoch: u64,
    /// The exporting store's migration sequence counter (merged via max so
    /// a promoted broker keeps minting fresh ids).
    pub next_migration_seq: u64,
    /// Every registered server with its view, ownership, and address.
    pub servers: Vec<(ServerId, ServerMeta)>,
    /// In-flight migration dependencies.
    pub pending: Vec<MigrationDep>,
    /// Durably completed migrations (retained for status queries).
    pub completed: Vec<MigrationDep>,
    /// Cancelled migrations (retained for status queries).
    pub cancelled: Vec<MigrationDep>,
}

/// What [`MetadataStore::merge_replica`] did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MergeOutcome {
    /// Whether the merge changed any local state.
    pub changed: bool,
    /// The local epoch after the merge (joined upward, bumped when the
    /// merge changed content).
    pub epoch: u64,
    /// Dependencies that *became* cancelled through this merge — the hook
    /// the cluster uses to roll back involved local servers.
    pub newly_cancelled: Vec<MigrationDep>,
}

/// Migration ids are namespaced by the source server id (high bits) over a
/// per-store sequence (low bits), so ids minted concurrently by different
/// processes never collide once replicas merge.
const MIGRATION_SEQ_BITS: u32 = 40;

fn compose_migration_id(source: ServerId, seq: u64) -> u64 {
    ((source.0 as u64) << MIGRATION_SEQ_BITS) | (seq & ((1u64 << MIGRATION_SEQ_BITS) - 1))
}

#[derive(Debug, Default)]
struct MetaInner {
    servers: HashMap<ServerId, ServerMeta>,
    migrations: Vec<MigrationDep>,
    /// Completed migrations, retained so a status query for an id minted at
    /// *another* process (learned through replica merge) can still answer
    /// "complete" rather than "unknown".  Migrations are rare, so retention
    /// is unbounded, mirroring `cancelled`.
    completed: Vec<MigrationDep>,
    /// Cancelled migrations, retained so status queries can distinguish
    /// "completed" from "rolled back".  Cancellations are rare (crash
    /// recovery), so retention is unbounded — evicting one would make its
    /// status read as a success.
    cancelled: Vec<MigrationDep>,
    next_migration_seq: u64,
    /// The cluster epoch: bumped on every mutation, joined upward on
    /// replica merge.  Replication uses it to decide which peers still
    /// need a fan-out and when a cancellation has converged.
    epoch: u64,
}

impl MetaInner {
    /// Which retention list holds `id`, if any.
    fn find_dep(&self, id: u64) -> Option<(DepList, usize)> {
        if let Some(i) = self.migrations.iter().position(|d| d.id == id) {
            return Some((DepList::Pending, i));
        }
        if let Some(i) = self.completed.iter().position(|d| d.id == id) {
            return Some((DepList::Completed, i));
        }
        if let Some(i) = self.cancelled.iter().position(|d| d.id == id) {
            return Some((DepList::Cancelled, i));
        }
        None
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DepList {
    Pending,
    Completed,
    Cancelled,
}

/// The retention list a dependency belongs in, derived from its flags.
fn dep_list_for(dep: &MigrationDep) -> DepList {
    if dep.cancelled {
        DepList::Cancelled
    } else if dep.is_complete() {
        DepList::Completed
    } else {
        DepList::Pending
    }
}

/// A deterministic total order on server-entry content, used only to break
/// equal-view conflicts during replica merge so every process converges on
/// the same winner.
fn merge_rank(m: &ServerMeta) -> (Vec<(u64, u64)>, String, usize, u64) {
    (
        m.owned.ranges().iter().map(|r| (r.start, r.end)).collect(),
        m.address.clone(),
        m.threads,
        m.view,
    )
}

/// The in-process metadata store.
#[derive(Debug, Default)]
pub struct MetadataStore {
    inner: Mutex<MetaInner>,
}

impl MetadataStore {
    /// Creates an empty store.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Registers (or re-registers) a server with its initial ownership.
    pub fn register_server(
        &self,
        id: ServerId,
        address: impl Into<String>,
        threads: usize,
        owned: RangeSet,
    ) {
        let mut inner = self.inner.lock();
        inner.servers.insert(
            id,
            ServerMeta {
                view: 1,
                owned,
                address: address.into(),
                threads,
            },
        );
        inner.epoch += 1;
    }

    /// Registers a server like [`MetadataStore::register_server`], but
    /// validates the registration first: re-registering an id that is
    /// already present is rejected (typed error, not a silent overwrite),
    /// as is an ownership claim overlapping another server's ranges.  This
    /// is the registration path cluster assembly uses; the unchecked
    /// variant remains for crash recovery, which deliberately re-registers
    /// a rebooted server over its old entry.
    pub fn try_register_server(
        &self,
        id: ServerId,
        address: impl Into<String>,
        threads: usize,
        owned: RangeSet,
    ) -> Result<(), MetaError> {
        let mut inner = self.inner.lock();
        if inner.servers.contains_key(&id) {
            return Err(MetaError::AlreadyRegistered(id));
        }
        for (other, meta) in &inner.servers {
            for theirs in meta.owned.ranges() {
                for ours in owned.ranges() {
                    if ours.overlaps(theirs) {
                        return Err(MetaError::OwnershipOverlap {
                            server: id,
                            other: *other,
                            range: HashRange::new(
                                ours.start.max(theirs.start),
                                ours.end.min(theirs.end),
                            ),
                        });
                    }
                }
            }
        }
        inner.servers.insert(
            id,
            ServerMeta {
                view: 1,
                owned,
                address: address.into(),
                threads,
            },
        );
        inner.epoch += 1;
        Ok(())
    }

    /// Removes a server (scale-in after its ranges have been migrated away).
    pub fn deregister_server(&self, id: ServerId) {
        let mut inner = self.inner.lock();
        if inner.servers.remove(&id).is_some() {
            inner.epoch += 1;
        }
    }

    /// The cluster epoch: bumped on every mutation, joined upward on
    /// replica merge.
    pub fn epoch(&self) -> u64 {
        self.inner.lock().epoch
    }

    /// Explicitly advances the cluster epoch without changing content — a
    /// newly promoted broker uses this so its first fan-out is tagged with
    /// an epoch strictly later than anything the failed broker sent.
    pub fn bump_epoch(&self) -> u64 {
        let mut inner = self.inner.lock();
        inner.epoch += 1;
        inner.epoch
    }

    /// The current view number of `id`.
    pub fn view_of(&self, id: ServerId) -> Option<u64> {
        self.inner.lock().servers.get(&id).map(|m| m.view)
    }

    /// A consistent snapshot of all ownership mappings.
    pub fn snapshot(&self) -> OwnershipSnapshot {
        OwnershipSnapshot {
            servers: self.inner.lock().servers.clone(),
        }
    }

    /// The `(server, view)` owning `hash`, if any.
    pub fn owner_of(&self, hash: u64) -> Option<(ServerId, u64)> {
        let inner = self.inner.lock();
        inner
            .servers
            .iter()
            .find(|(_, m)| m.owned.contains(hash))
            .map(|(id, m)| (*id, m.view))
    }

    /// Atomically moves `ranges` from `source` to `target`: both servers'
    /// view numbers are incremented, the ownership mappings updated, and a
    /// migration dependency recorded (paper §3.3 "Sampling" step 1).
    ///
    /// Conflicting migrations are serialized here: a transfer whose ranges
    /// overlap an in-flight dependency (e.g. migrating onward ranges whose
    /// previous migration has not completed on both sides) is rejected with
    /// [`MetaError::ConflictingMigration`] until that dependency settles.
    ///
    /// Returns `(migration id, new source view, new target view)`.
    pub fn transfer_ownership(
        &self,
        source: ServerId,
        target: ServerId,
        ranges: &[HashRange],
    ) -> Result<(u64, u64, u64), MetaError> {
        let mut inner = self.inner.lock();
        {
            let src = inner
                .servers
                .get(&source)
                .ok_or(MetaError::UnknownServer(source))?;
            for r in ranges {
                if !r
                    .split(2)
                    .iter()
                    .all(|half| src.owned.contains(half.start) || half.width() == 0)
                {
                    return Err(MetaError::NotOwned {
                        server: source,
                        range: *r,
                    });
                }
            }
            inner
                .servers
                .get(&target)
                .ok_or(MetaError::UnknownServer(target))?;
            for dep in &inner.migrations {
                for theirs in &dep.ranges {
                    for ours in ranges {
                        if ours.overlaps(theirs) {
                            return Err(MetaError::ConflictingMigration {
                                conflicting: dep.id,
                                range: HashRange::new(
                                    ours.start.max(theirs.start),
                                    ours.end.min(theirs.end),
                                ),
                            });
                        }
                    }
                }
            }
        }
        let seq = inner.next_migration_seq;
        inner.next_migration_seq += 1;
        let id = compose_migration_id(source, seq);
        let src = inner.servers.get_mut(&source).unwrap();
        src.owned.remove(ranges);
        src.view += 1;
        let new_source_view = src.view;
        let tgt = inner.servers.get_mut(&target).unwrap();
        tgt.owned.add(ranges);
        tgt.view += 1;
        let new_target_view = tgt.view;
        inner.migrations.push(MigrationDep {
            id,
            source,
            target,
            ranges: ranges.to_vec(),
            source_complete: false,
            target_complete: false,
            cancelled: false,
        });
        inner.epoch += 1;
        Ok((id, new_source_view, new_target_view))
    }

    /// Marks one side of a migration complete.  Once both sides are complete
    /// the dependency moves to the completed-retention list (no longer
    /// consulted by recovery, but still answering status queries).  Returns
    /// `true` if the dependency is now fully resolved.
    pub fn mark_complete(&self, migration_id: u64, server: ServerId) -> Result<bool, MetaError> {
        let mut inner = self.inner.lock();
        let pos = inner
            .migrations
            .iter()
            .position(|d| d.id == migration_id)
            .ok_or(MetaError::UnknownMigration(migration_id))?;
        let dep = &mut inner.migrations[pos];
        if dep.source == server {
            dep.source_complete = true;
        } else if dep.target == server {
            dep.target_complete = true;
        } else {
            return Err(MetaError::UnknownServer(server));
        }
        let done = dep.is_complete();
        if done {
            let dep = inner.migrations.remove(pos);
            inner.completed.push(dep);
        }
        inner.epoch += 1;
        Ok(done)
    }

    /// Cancels an in-flight migration (paper §3.3.1): ownership of the ranges
    /// is transferred back to the source and both views advance again, so
    /// both servers can be rolled back to their pre-migration checkpoints.
    pub fn cancel_migration(&self, migration_id: u64) -> Result<MigrationDep, MetaError> {
        let mut inner = self.inner.lock();
        let pos = inner
            .migrations
            .iter()
            .position(|d| d.id == migration_id)
            .ok_or(MetaError::UnknownMigration(migration_id))?;
        let mut dep = inner.migrations.remove(pos);
        dep.cancelled = true;
        let ranges = dep.ranges.clone();
        if let Some(tgt) = inner.servers.get_mut(&dep.target) {
            tgt.owned.remove(&ranges);
            tgt.view += 1;
        }
        if let Some(src) = inner.servers.get_mut(&dep.source) {
            src.owned.add(&ranges);
            src.view += 1;
        }
        inner.cancelled.push(dep.clone());
        inner.epoch += 1;
        Ok(dep)
    }

    /// Any migration dependency involving `server` that has not completed
    /// (consulted during crash recovery).
    pub fn pending_dependency_for(&self, server: ServerId) -> Option<MigrationDep> {
        self.inner
            .lock()
            .migrations
            .iter()
            .find(|d| (d.source == server || d.target == server) && !d.is_complete())
            .cloned()
    }

    /// Number of unresolved migration dependencies.
    pub fn pending_migrations(&self) -> usize {
        self.inner.lock().migrations.len()
    }

    /// The state of migration `id`: `Ok(Some(dep))` while it is in flight
    /// or was cancelled (`dep.cancelled` distinguishes them), `Ok(None)`
    /// once both sides completed, and `Err` if no such migration was ever
    /// issued (or learned through replication).
    pub fn migration_state(&self, id: u64) -> Result<Option<MigrationDep>, MetaError> {
        let inner = self.inner.lock();
        match inner.find_dep(id) {
            Some((DepList::Pending, i)) => Ok(Some(inner.migrations[i].clone())),
            Some((DepList::Cancelled, i)) => Ok(Some(inner.cancelled[i].clone())),
            Some((DepList::Completed, _)) => Ok(None),
            None => Err(MetaError::UnknownMigration(id)),
        }
    }

    /// Every in-flight migration dependency (the broker's coordinator scans
    /// these for conflicts and unconverged cancellations).
    pub fn pending_deps(&self) -> Vec<MigrationDep> {
        self.inner.lock().migrations.clone()
    }

    /// Every cancelled migration dependency still retained.
    pub fn cancelled_deps(&self) -> Vec<MigrationDep> {
        self.inner.lock().cancelled.clone()
    }

    /// Exports a full, epoch-tagged copy of the store for replication.
    pub fn replica(&self) -> MetaReplica {
        let inner = self.inner.lock();
        let mut servers: Vec<(ServerId, ServerMeta)> = inner
            .servers
            .iter()
            .map(|(id, m)| (*id, m.clone()))
            .collect();
        servers.sort_by_key(|(id, _)| *id);
        let sorted = |v: &[MigrationDep]| {
            let mut v = v.to_vec();
            v.sort_by_key(|d| d.id);
            v
        };
        MetaReplica {
            epoch: inner.epoch,
            next_migration_seq: inner.next_migration_seq,
            servers,
            pending: sorted(&inner.migrations),
            completed: sorted(&inner.completed),
            cancelled: sorted(&inner.cancelled),
        }
    }

    /// Merges a replica exported by another process into this store.
    ///
    /// The merge is convergent and commutative over repeated application:
    ///
    /// * a server entry is adopted when the incoming view is newer (equal
    ///   views with different content break the tie deterministically on
    ///   content, so every process picks the same winner) — except its
    ///   *address*, which is process-local routing (a fabric name where
    ///   the server is hosted, a socket address everywhere else) and is
    ///   never overwritten once locally registered,
    /// * dependency flags only ever gain — completion flags and
    ///   `cancelled` OR together, and the dependency settles into the
    ///   retention list its merged flags dictate,
    /// * the migration sequence counter and the epoch join upward; a merge
    ///   that changed content bumps the epoch past both inputs so the
    ///   change propagates on the next fan-out.
    ///
    /// Ownership rollback for a dependency that *became* cancelled through
    /// the merge is carried by the accompanying server entries (the
    /// cancelling store bumped both views); the ids are reported in
    /// [`MergeOutcome::newly_cancelled`] so the cluster can roll back any
    /// involved local server's in-flight state.
    pub fn merge_replica(&self, replica: &MetaReplica) -> MergeOutcome {
        let mut inner = self.inner.lock();
        let mut changed = false;
        let mut newly_cancelled = Vec::new();
        for (id, incoming) in &replica.servers {
            // Addresses are process-local routing facts, not replicated
            // state: the same server is a fabric name in the process that
            // hosts it and a socket address everywhere else.  An adopted
            // entry therefore keeps the locally registered address; only a
            // server unknown to this store takes the exporter's address.
            let mut incoming = incoming.clone();
            if let Some(local) = inner.servers.get(id) {
                incoming.address = local.address.clone();
            }
            let adopt = match inner.servers.get(id) {
                None => true,
                Some(local) => {
                    incoming.view > local.view
                        || (incoming.view == local.view
                            && &incoming != local
                            && merge_rank(&incoming) > merge_rank(local))
                }
            };
            if adopt {
                inner.servers.insert(*id, incoming);
                changed = true;
            }
        }
        for incoming in replica
            .pending
            .iter()
            .chain(&replica.completed)
            .chain(&replica.cancelled)
        {
            let merged = match inner.find_dep(incoming.id) {
                Some((list, i)) => {
                    let local = match list {
                        DepList::Pending => inner.migrations.remove(i),
                        DepList::Completed => inner.completed.remove(i),
                        DepList::Cancelled => inner.cancelled.remove(i),
                    };
                    let mut merged = local.clone();
                    merged.source_complete |= incoming.source_complete;
                    merged.target_complete |= incoming.target_complete;
                    merged.cancelled |= incoming.cancelled;
                    if merged != local {
                        changed = true;
                        if merged.cancelled && !local.cancelled {
                            newly_cancelled.push(merged.clone());
                        }
                    }
                    merged
                }
                None => {
                    changed = true;
                    if incoming.cancelled {
                        newly_cancelled.push(incoming.clone());
                    }
                    incoming.clone()
                }
            };
            // `dep_list_for` checks `cancelled` first, so a cancelled
            // dependency stays in the cancelled list even if a laggard
            // replica delivered both completion flags.
            match dep_list_for(&merged) {
                DepList::Pending => inner.migrations.push(merged),
                DepList::Completed => inner.completed.push(merged),
                DepList::Cancelled => inner.cancelled.push(merged),
            }
        }
        if replica.next_migration_seq > inner.next_migration_seq {
            inner.next_migration_seq = replica.next_migration_seq;
            changed = true;
        }
        let joined = inner.epoch.max(replica.epoch);
        inner.epoch = if changed { joined + 1 } else { joined };
        MergeOutcome {
            changed,
            epoch: inner.epoch,
            newly_cancelled,
        }
    }
}

/// Errors returned by the metadata store.
///
/// `Display` phrasing is uniform across the public error surface
/// ([`MetaError`], [`crate::LayoutError`], and the RPC crate's `RpcError`):
/// lowercase, no trailing period, `detail: context` ordering — audited by a
/// unit test so scripts and logs can rely on it.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MetaError {
    /// The server is not registered.
    UnknownServer(ServerId),
    /// The server id is already registered (checked registration only).
    AlreadyRegistered(ServerId),
    /// The migration id does not exist.
    UnknownMigration(u64),
    /// The source does not own the requested range.
    NotOwned {
        /// The server that was asked to give up the range.
        server: ServerId,
        /// The range it does not own.
        range: HashRange,
    },
    /// A registration claimed ranges another server already owns (checked
    /// registration only).
    OwnershipOverlap {
        /// The server being registered.
        server: ServerId,
        /// The server whose ownership it collides with.
        other: ServerId,
        /// Where the claims collide.
        range: HashRange,
    },
    /// The requested transfer overlaps an in-flight migration; conflicting
    /// migrations are serialized, retry once the earlier one settles.
    ConflictingMigration {
        /// The in-flight migration it collides with.
        conflicting: u64,
        /// Where the range sets collide.
        range: HashRange,
    },
    /// No broker/coordinator is reachable to serve the mutation — the
    /// typed unavailability a replicated deployment reports between a
    /// broker failure and the next promotion.
    CoordinatorUnavailable {
        /// What was unreachable and why.
        detail: String,
    },
}

impl std::fmt::Display for MetaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetaError::UnknownServer(s) => write!(f, "unknown server {s:?}"),
            MetaError::AlreadyRegistered(s) => write!(f, "server {s:?} already registered"),
            MetaError::UnknownMigration(id) => write!(f, "unknown migration {id}"),
            MetaError::NotOwned { server, range } => {
                write!(f, "server {server:?} does not own range {range}")
            }
            MetaError::OwnershipOverlap {
                server,
                other,
                range,
            } => write!(
                f,
                "registration of {server:?} overlaps {other:?} at {range}"
            ),
            MetaError::ConflictingMigration { conflicting, range } => write!(
                f,
                "transfer overlaps in-flight migration {conflicting} at {range}"
            ),
            MetaError::CoordinatorUnavailable { detail } => {
                write!(f, "metadata coordinator unavailable: {detail}")
            }
        }
    }
}

impl std::error::Error for MetaError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash_range::partition_space;

    fn two_server_store() -> Arc<MetadataStore> {
        let meta = MetadataStore::new();
        let parts = partition_space(2);
        meta.register_server(ServerId(0), "sv0", 2, RangeSet::from_ranges([parts[0]]));
        meta.register_server(ServerId(1), "sv1", 2, RangeSet::from_ranges([parts[1]]));
        meta
    }

    #[test]
    fn registration_and_ownership_lookup() {
        let meta = two_server_store();
        assert_eq!(meta.view_of(ServerId(0)), Some(1));
        let (owner, view) = meta.owner_of(0).unwrap();
        assert_eq!(owner, ServerId(0));
        assert_eq!(view, 1);
        let (owner, _) = meta.owner_of(u64::MAX).unwrap();
        assert_eq!(owner, ServerId(1));
    }

    #[test]
    fn transfer_increments_both_views_and_moves_ranges() {
        let meta = two_server_store();
        let moved = partition_space(2)[0].take_fraction(0.1);
        let (id, src_view, tgt_view) = meta
            .transfer_ownership(ServerId(0), ServerId(1), &[moved])
            .unwrap();
        assert_eq!(src_view, 2);
        assert_eq!(tgt_view, 2);
        assert_eq!(meta.pending_migrations(), 1);
        // The moved hash now resolves to the target.
        let (owner, view) = meta.owner_of(moved.start).unwrap();
        assert_eq!(owner, ServerId(1));
        assert_eq!(view, 2);
        // The rest of server 0's range is untouched.
        let (owner, _) = meta.owner_of(moved.end + 1).unwrap();
        assert_eq!(owner, ServerId(0));
        // Completing both sides garbage-collects the dependency.
        assert!(!meta.mark_complete(id, ServerId(0)).unwrap());
        assert!(meta.mark_complete(id, ServerId(1)).unwrap());
        assert_eq!(meta.pending_migrations(), 0);
    }

    #[test]
    fn transfer_of_unowned_range_fails() {
        let meta = two_server_store();
        let not_owned = partition_space(2)[1];
        let err = meta
            .transfer_ownership(ServerId(0), ServerId(1), &[not_owned])
            .unwrap_err();
        assert!(matches!(err, MetaError::NotOwned { .. }));
    }

    #[test]
    fn cancellation_returns_ranges_to_source() {
        let meta = two_server_store();
        let moved = partition_space(2)[0].take_fraction(0.25);
        let (id, ..) = meta
            .transfer_ownership(ServerId(0), ServerId(1), &[moved])
            .unwrap();
        let dep = meta.cancel_migration(id).unwrap();
        assert!(dep.cancelled);
        let (owner, view) = meta.owner_of(moved.start).unwrap();
        assert_eq!(owner, ServerId(0));
        assert_eq!(view, 3, "cancellation advances the view again");
        assert_eq!(meta.pending_migrations(), 0);
    }

    #[test]
    fn pending_dependency_visible_until_both_complete() {
        let meta = two_server_store();
        let moved = partition_space(2)[0].take_fraction(0.1);
        let (id, ..) = meta
            .transfer_ownership(ServerId(0), ServerId(1), &[moved])
            .unwrap();
        assert!(meta.pending_dependency_for(ServerId(0)).is_some());
        assert!(meta.pending_dependency_for(ServerId(1)).is_some());
        meta.mark_complete(id, ServerId(0)).unwrap();
        assert!(meta.pending_dependency_for(ServerId(1)).is_some());
        meta.mark_complete(id, ServerId(1)).unwrap();
        assert!(meta.pending_dependency_for(ServerId(0)).is_none());
    }

    #[test]
    fn snapshot_is_consistent_copy() {
        let meta = two_server_store();
        let snap = meta.snapshot();
        assert_eq!(snap.servers.len(), 2);
        assert_eq!(snap.owner_of(0).unwrap().0, ServerId(0));
        // Later changes do not affect the snapshot.
        let moved = partition_space(2)[0].take_fraction(0.5);
        meta.transfer_ownership(ServerId(0), ServerId(1), &[moved])
            .unwrap();
        assert_eq!(snap.owner_of(moved.start).unwrap().0, ServerId(0));
        assert_eq!(
            meta.snapshot().owner_of(moved.start).unwrap().0,
            ServerId(1)
        );
    }

    #[test]
    fn checked_registration_rejects_duplicates_and_overlap() {
        let meta = MetadataStore::new();
        let parts = partition_space(2);
        meta.try_register_server(ServerId(0), "sv0", 2, RangeSet::from_ranges([parts[0]]))
            .expect("first registration");
        assert_eq!(
            meta.try_register_server(ServerId(0), "sv0", 2, RangeSet::empty()),
            Err(MetaError::AlreadyRegistered(ServerId(0)))
        );
        // Overlapping claim: server 1 tries to own the whole space while
        // server 0 holds the bottom half.
        match meta.try_register_server(ServerId(1), "sv1", 2, RangeSet::full()) {
            Err(MetaError::OwnershipOverlap { server, other, .. }) => {
                assert_eq!(server, ServerId(1));
                assert_eq!(other, ServerId(0));
            }
            other => panic!("expected OwnershipOverlap, got {other:?}"),
        }
        // The rejected registration left no trace.
        assert_eq!(meta.view_of(ServerId(1)), None);
        // A disjoint claim goes through.
        meta.try_register_server(ServerId(1), "sv1", 2, RangeSet::from_ranges([parts[1]]))
            .expect("disjoint registration");
    }

    #[test]
    fn epoch_bumps_on_every_mutation() {
        let meta = MetadataStore::new();
        let e0 = meta.epoch();
        let parts = partition_space(2);
        meta.register_server(ServerId(0), "sv0", 2, RangeSet::from_ranges([parts[0]]));
        meta.register_server(ServerId(1), "sv1", 2, RangeSet::from_ranges([parts[1]]));
        let e1 = meta.epoch();
        assert!(e1 > e0, "registration must bump the epoch");
        let moved = parts[0].take_fraction(0.1);
        let (id, ..) = meta
            .transfer_ownership(ServerId(0), ServerId(1), &[moved])
            .unwrap();
        let e2 = meta.epoch();
        assert!(e2 > e1, "transfer must bump the epoch");
        meta.cancel_migration(id).unwrap();
        assert!(meta.epoch() > e2, "cancellation must bump the epoch");
        let before = meta.epoch();
        assert_eq!(meta.bump_epoch(), before + 1);
    }

    #[test]
    fn migration_ids_are_namespaced_by_source() {
        let a = two_server_store();
        let b = two_server_store();
        let moved_a = partition_space(2)[0].take_fraction(0.1);
        let moved_b = partition_space(2)[1].take_fraction(0.1);
        let (id_a, ..) = a
            .transfer_ownership(ServerId(0), ServerId(1), &[moved_a])
            .unwrap();
        let (id_b, ..) = b
            .transfer_ownership(ServerId(1), ServerId(0), &[moved_b])
            .unwrap();
        // Both stores minted seq 0, but the source id keeps them distinct
        // once replicas meet.
        assert_ne!(id_a, id_b);
    }

    #[test]
    fn completed_migrations_keep_answering_status() {
        let meta = two_server_store();
        let moved = partition_space(2)[0].take_fraction(0.1);
        let (id, ..) = meta
            .transfer_ownership(ServerId(0), ServerId(1), &[moved])
            .unwrap();
        meta.mark_complete(id, ServerId(0)).unwrap();
        meta.mark_complete(id, ServerId(1)).unwrap();
        assert_eq!(meta.pending_migrations(), 0);
        assert_eq!(meta.migration_state(id), Ok(None), "completed, not unknown");
        assert!(matches!(
            meta.migration_state(id + 999),
            Err(MetaError::UnknownMigration(_))
        ));
    }

    #[test]
    fn overlapping_transfer_is_serialized_behind_the_pending_one() {
        let meta = two_server_store();
        let moved = partition_space(2)[0].take_fraction(0.5);
        let (id, ..) = meta
            .transfer_ownership(ServerId(0), ServerId(1), &[moved])
            .unwrap();
        // The target cannot migrate the in-flight ranges onward until the
        // first migration completes on both sides.
        let err = meta
            .transfer_ownership(ServerId(1), ServerId(0), &[moved])
            .unwrap_err();
        match err {
            MetaError::ConflictingMigration { conflicting, .. } => assert_eq!(conflicting, id),
            other => panic!("expected ConflictingMigration, got {other:?}"),
        }
        meta.mark_complete(id, ServerId(0)).unwrap();
        meta.mark_complete(id, ServerId(1)).unwrap();
        meta.transfer_ownership(ServerId(1), ServerId(0), &[moved])
            .expect("settled dependency no longer conflicts");
    }

    #[test]
    fn replica_merge_converges_two_divergent_stores() {
        let a = two_server_store();
        let b = two_server_store();
        // Store A migrates; store B knows nothing about it.
        let moved = partition_space(2)[0].take_fraction(0.25);
        let (id, ..) = a
            .transfer_ownership(ServerId(0), ServerId(1), &[moved])
            .unwrap();
        let out = b.merge_replica(&a.replica());
        assert!(out.changed);
        assert!(out.newly_cancelled.is_empty());
        assert_eq!(b.owner_of(moved.start).unwrap().0, ServerId(1));
        assert_eq!(
            b.migration_state(id).unwrap().map(|d| d.cancelled),
            Some(false)
        );
        // Merging the same replica again is a no-op at a stable epoch.
        let again = b.merge_replica(&a.replica());
        assert!(!again.changed, "second merge must be idempotent");
        // B cancels; merging B back into A reports the cancellation and
        // rolls ownership back by view.
        b.cancel_migration(id).unwrap();
        let out = a.merge_replica(&b.replica());
        assert!(out.changed);
        assert_eq!(out.newly_cancelled.len(), 1);
        assert_eq!(out.newly_cancelled[0].id, id);
        assert_eq!(a.owner_of(moved.start).unwrap().0, ServerId(0));
        // Cross-merge until quiescent: both sides settle on the same state.
        loop {
            let ab = a.merge_replica(&b.replica()).changed;
            let ba = b.merge_replica(&a.replica()).changed;
            if !ab && !ba {
                break;
            }
        }
        assert_eq!(a.replica(), b.replica(), "stores must converge");
    }

    #[test]
    fn merge_keeps_locally_registered_addresses() {
        // The same two servers as seen by two processes: each is a local
        // fabric name in its own process and a socket address in the other.
        let halves = partition_space(2);
        let a = MetadataStore::new();
        a.register_server(
            ServerId(0),
            "fabric-0",
            2,
            RangeSet::from_ranges([halves[0]]),
        );
        a.register_server(
            ServerId(1),
            "127.0.0.1:4871",
            2,
            RangeSet::from_ranges([halves[1]]),
        );
        let b = MetadataStore::new();
        b.register_server(
            ServerId(0),
            "127.0.0.1:4870",
            2,
            RangeSet::from_ranges([halves[0]]),
        );
        b.register_server(
            ServerId(1),
            "fabric-1",
            2,
            RangeSet::from_ranges([halves[1]]),
        );
        // A migration at A bumps both involved views, so B adopts A's
        // entries on merge — ranges and views, but never the addresses.
        let moved = halves[0].take_fraction(0.25);
        a.transfer_ownership(ServerId(0), ServerId(1), &[moved])
            .unwrap();
        b.merge_replica(&a.replica());
        assert_eq!(b.owner_of(moved.start).unwrap().0, ServerId(1));
        let snap = b.snapshot();
        assert_eq!(snap.server(ServerId(0)).unwrap().address, "127.0.0.1:4870");
        assert_eq!(snap.server(ServerId(1)).unwrap().address, "fabric-1");
        // Cross-merge to quiescence: the stores converge on everything
        // except the address column, which stays process-local.
        loop {
            let ab = a.merge_replica(&b.replica()).changed;
            let ba = b.merge_replica(&a.replica()).changed;
            if !ab && !ba {
                break;
            }
        }
        let a_snap = a.snapshot();
        assert_eq!(a_snap.server(ServerId(0)).unwrap().address, "fabric-0");
        assert_eq!(
            a_snap.server(ServerId(1)).unwrap().address,
            "127.0.0.1:4871"
        );
    }

    #[test]
    fn merge_never_downgrades_a_newer_view() {
        let a = two_server_store();
        let stale = a.replica();
        let moved = partition_space(2)[0].take_fraction(0.25);
        a.transfer_ownership(ServerId(0), ServerId(1), &[moved])
            .unwrap();
        let out = a.merge_replica(&stale);
        assert_eq!(a.owner_of(moved.start).unwrap().0, ServerId(1));
        assert!(out.newly_cancelled.is_empty());
    }

    #[test]
    fn unknown_server_errors() {
        let meta = MetadataStore::new();
        assert_eq!(meta.view_of(ServerId(9)), None);
        assert!(matches!(
            meta.transfer_ownership(ServerId(0), ServerId(1), &[HashRange::FULL]),
            Err(MetaError::UnknownServer(_))
        ));
        assert!(matches!(
            meta.mark_complete(0, ServerId(0)),
            Err(MetaError::UnknownMigration(0))
        ));
    }
}
