//! Crash recovery and migration cancellation (paper §3.3.1).
//!
//! A migration is durable only once both the source and the target have
//! checkpointed their post-migration state and marked their side complete at
//! the metadata store; until then a *migration dependency* links the two
//! servers.  If a server crashes while the dependency is unresolved, recovery
//! must involve both servers: the migration is cancelled at the metadata
//! store (ownership of the migrating ranges moves back to the source and both
//! views advance again), the surviving server adopts the post-cancellation
//! ownership map and drops its in-flight migration state, and the crashed
//! server is restarted from its latest checkpoint.
//!
//! Simulation notes (see DESIGN.md §1):
//!
//! * A "crash" stops the server's dispatch threads and discards the in-memory
//!   `Server`; the simulated SSD (and the shared blob tier) survive, exactly
//!   as physical devices would.
//! * The paper rolls *both* servers back to their pre-migration checkpoints
//!   and replays client requests over the recovery cut (client-assisted
//!   recovery, left as future work in the paper).  This reproduction restores
//!   only the crashed server from its checkpoint; the surviving peer keeps
//!   running and simply adopts the cancelled ownership map.  Records it had
//!   already received become unreachable duplicates on its log and are
//!   discarded by its next compaction, so no key is ever served by two owners
//!   — the property the cancellation protocol exists to protect.

use std::sync::Arc;

use shadowfax_faster::{recover_from_checkpoint, take_checkpoint, Checkpoint, Faster};
use shadowfax_storage::{Device, LogId, SharedBlobTier};

use crate::cluster::Cluster;
use crate::config::ServerConfig;
use crate::hash_range::RangeSet;
use crate::meta::MetadataStore;
use crate::server::{KvNetwork, MigrationNetwork, Server};
use crate::ServerId;

/// Everything that survives a server crash: the durable devices and the last
/// checkpoint image.  Produced by [`Cluster::crash_server`] and consumed by
/// [`Cluster::recover_server`].
pub struct CrashedServer {
    /// The crashed server's configuration (identity, threads, FASTER sizing).
    pub config: ServerConfig,
    /// The server's local SSD, which survives the crash.
    pub ssd: Arc<dyn Device>,
    /// The latest checkpoint taken before the crash, if any.
    pub checkpoint: Option<Checkpoint>,
}

impl std::fmt::Debug for CrashedServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CrashedServer")
            .field("id", &self.config.id)
            .field("has_checkpoint", &self.checkpoint.is_some())
            .finish()
    }
}

/// What recovery did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryOutcome {
    /// The migration that was cancelled because it was still in flight when
    /// the server crashed, if any.
    pub cancelled_migration: Option<u64>,
    /// The hash ranges the recovered server owns (read back from the metadata
    /// store after any cancellation).
    pub restored_ranges: RangeSet,
    /// The view number the recovered server serves in.
    pub view: u64,
    /// `true` if the server was restored from a checkpoint (otherwise it came
    /// back empty and relies on clients re-populating it).
    pub restored_from_checkpoint: bool,
}

impl Server {
    /// Takes a checkpoint of this server's store right now and keeps it as
    /// the server's recovery point.  Dispatch threads participate in the
    /// global cut from their normal loops; none of them stall.
    pub fn checkpoint_now(self: &Arc<Self>) -> Checkpoint {
        let session = self.store.start_session();
        let cp = take_checkpoint(&self.store, &session);
        *self.latest_checkpoint.lock() = Some(cp.clone());
        cp
    }

    /// The most recent checkpoint image (taken by [`Server::checkpoint_now`]
    /// or at migration completion), if any.
    pub fn latest_checkpoint(&self) -> Option<Checkpoint> {
        self.latest_checkpoint.lock().clone()
    }

    /// Re-reads this server's view number and owned ranges from the metadata
    /// store.  Used after a migration involving this server was cancelled.
    pub fn refresh_ownership_from_meta(&self) {
        let snapshot = self.meta.snapshot();
        if let Some(m) = snapshot.server(self.id()) {
            self.serving_view
                .store(m.view, std::sync::atomic::Ordering::SeqCst);
            *self.owned.write() = m.owned.clone();
            // The ownership map changed: have dispatch threads re-check
            // their pended batches against it (a batch that pended for a
            // range this server just gave back must be rejected, not
            // answered).  Raised after `owned` is updated so the check can
            // never run against the stale map.
            self.pend_flush_epoch
                .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        }
    }

    /// Drops any in-flight migration state referring to `migration_id`
    /// (either role).  Called on the surviving peer when a migration is
    /// cancelled during the other server's recovery.
    pub fn abort_migration_state(&self, migration_id: u64) {
        {
            let mut incoming = self.incoming.lock();
            if incoming
                .as_ref()
                .map(|m| m.migration_id == migration_id)
                .unwrap_or(false)
            {
                *incoming = None;
                self.incoming_active
                    .store(false, std::sync::atomic::Ordering::SeqCst);
                // Batches that pended for the migrating ranges are orphaned.
                // The pend-flush signal is raised by the ownership refresh
                // that always follows this call (see
                // `refresh_ownership_from_meta`), *after* `owned` reflects
                // the rollback — raising it here would let a dispatch thread
                // consume the signal against the pre-rollback ownership map
                // and reject nothing.
            }
        }
        let mut outgoing = self.outgoing.write();
        if outgoing
            .as_ref()
            .map(|m| m.migration_id == migration_id)
            .unwrap_or(false)
        {
            *outgoing = None;
        }
    }

    /// Rebuilds a server after a crash: a fresh FASTER instance is attached to
    /// the surviving SSD and shared-tier log, restored from `checkpoint` if
    /// one is available, and the server's view number and owned ranges are
    /// read back from the metadata store (which is authoritative after any
    /// migration cancellation).
    ///
    /// Unlike [`Server::new`], this does **not** register the server with the
    /// metadata store — the crashed server's registration is still there.
    // A rebuild necessarily threads every substrate handle the crashed
    // incarnation held plus the surviving SSD and checkpoint.
    #[allow(clippy::too_many_arguments)]
    pub fn recover(
        config: ServerConfig,
        meta: Arc<MetadataStore>,
        kv_net: Arc<KvNetwork>,
        mig_net: Arc<MigrationNetwork>,
        shared_tier: Arc<SharedBlobTier>,
        ssd: Arc<dyn Device>,
        checkpoint: Option<&Checkpoint>,
        metrics: Arc<shadowfax_obs::MetricsRegistry>,
    ) -> Arc<Self> {
        use parking_lot::{Mutex, RwLock};
        use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize};

        config.validate();
        let epoch = Arc::new(shadowfax_epoch::EpochManager::new());
        let shared_handle = shared_tier.handle(LogId(config.id.0 as u64));
        let store = Faster::new(config.faster, Arc::clone(&ssd), Some(shared_handle), epoch);
        if let Some(cp) = checkpoint {
            recover_from_checkpoint(&store, cp);
        }
        let snapshot = meta.snapshot();
        let (view, owned) = snapshot
            .server(config.id)
            .map(|m| (m.view, m.owned.clone()))
            .unwrap_or((1, RangeSet::empty()));
        let tier_service =
            RwLock::new(Arc::clone(&shared_tier) as Arc<dyn shadowfax_storage::TierService>);
        // Re-adopt the crashed incarnation's named instruments (cumulative
        // counters survive a crash within the process) and point the
        // store/device source at the rebuilt store.  Nothing pends in a
        // freshly recovered server, so the gauge restarts at zero.
        let instruments =
            crate::server::ServerInstruments::register(&metrics, config.id, &store, &ssd);
        instruments.pending_gauge.set(0);
        let timeline = metrics.timeline();
        Arc::new(Server {
            store,
            meta,
            kv_net,
            mig_net,
            shared_tier,
            tier_service,
            serving_view: AtomicU64::new(view),
            owned: RwLock::new(owned),
            mig_connector: RwLock::new(None),
            incoming: Mutex::new(None),
            stray_migration_items: Mutex::new(std::collections::HashMap::new()),
            outgoing: RwLock::new(None),
            finishing: Mutex::new(None),
            finishing_active: AtomicBool::new(false),
            incoming_active: AtomicBool::new(false),
            pend_flush_epoch: AtomicU64::new(0),
            completed_report: Mutex::new(None),
            latest_checkpoint: Mutex::new(checkpoint.cloned()),
            metrics,
            timeline,
            pending_gauge: instruments.pending_gauge,
            total_pended: instruments.total_pended,
            indirection_fetches: instruments.indirection_fetches,
            remote_chain_fetches: instruments.remote_chain_fetches,
            tier_direct_chains: instruments.tier_direct_chains,
            migrations_cancelled: instruments.migrations_cancelled,
            records_rolled_back: instruments.records_rolled_back,
            heartbeats_missed: instruments.heartbeats_missed,
            loop_generation: (0..config.threads).map(|_| AtomicU64::new(0)).collect(),
            shutdown: AtomicBool::new(false),
            threads_running: AtomicUsize::new(0),
            config,
        })
    }
}

impl Cluster {
    /// Simulates a crash of `id`: its dispatch threads stop, its in-memory
    /// state is discarded, and everything that would survive on real hardware
    /// — the SSD, the shared-tier log, and the last checkpoint — is returned
    /// so the server can later be brought back with
    /// [`Cluster::recover_server`].
    pub fn crash_server(&mut self, id: ServerId) -> Result<CrashedServer, String> {
        let handle = self
            .take_handle(id)
            .ok_or_else(|| format!("unknown server {id}"))?;
        let server = Arc::clone(handle.server());
        let config = server.config().clone();
        let ssd = Arc::clone(server.store().log().ssd());
        let checkpoint = server.latest_checkpoint();
        handle.shutdown();
        Ok(CrashedServer {
            config,
            ssd,
            checkpoint,
        })
    }

    /// Recovers a crashed server (paper §3.3.1).
    ///
    /// If the metadata store still holds an unresolved migration dependency
    /// involving the server, the migration is cancelled: ownership of the
    /// migrating ranges returns to the source, both views advance, and the
    /// surviving peer drops its in-flight migration state and adopts the
    /// post-cancellation ownership map.  The crashed server is then rebuilt
    /// from its surviving devices and checkpoint and its dispatch threads are
    /// restarted.
    pub fn recover_server(&mut self, crashed: CrashedServer) -> Result<RecoveryOutcome, String> {
        let id = crashed.config.id;
        // Step 1: cancel any migration the crash left unresolved.
        let cancelled_migration = match self.meta().pending_dependency_for(id) {
            Some(dep) => {
                let dep = self
                    .meta()
                    .cancel_migration(dep.id)
                    .map_err(|e| e.to_string())?;
                let peer = if dep.source == id {
                    dep.target
                } else {
                    dep.source
                };
                if let Some(peer) = self.server(peer) {
                    peer.abort_migration_state(dep.id);
                    peer.refresh_ownership_from_meta();
                }
                Some(dep.id)
            }
            None => None,
        };
        // Step 2: rebuild the server from its surviving devices + checkpoint.
        let restored_from_checkpoint = crashed.checkpoint.is_some();
        let server = Server::recover(
            crashed.config,
            Arc::clone(self.meta()),
            Arc::clone(self.kv_network()),
            Arc::clone(self.migration_network()),
            Arc::clone(self.shared_tier()),
            crashed.ssd,
            crashed.checkpoint.as_ref(),
            Arc::clone(self.metrics()),
        );
        let outcome = RecoveryOutcome {
            cancelled_migration,
            restored_ranges: server.owned_ranges(),
            view: server.serving_view(),
            restored_from_checkpoint,
        };
        self.push_handle(server.spawn_threads());
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, ClusterConfig};
    use crate::config::ClientConfig;

    /// Enough data to span multiple log pages, so recovery exercises both the
    /// restored-from-checkpoint frames and the fall-back-to-SSD read path for
    /// pages that were already durable when the checkpoint was taken.
    #[test]
    fn recovered_store_serves_data_from_restored_pages_and_from_the_ssd() {
        let mut cluster = Cluster::start(ClusterConfig::two_server_test());
        {
            let mut loader = cluster.client(ClientConfig::default());
            for key in 0..2000u64 {
                loader.issue_upsert(key, vec![7u8; 128], Box::new(|_| {}));
                if loader.outstanding_ops() > 2048 {
                    loader.poll();
                }
            }
            assert!(loader.drain(std::time::Duration::from_secs(60)));
        }
        let server = cluster.server(ServerId(0)).unwrap();
        let cp = server.checkpoint_now();
        assert!(cp.version >= 1);
        drop(server);

        let crashed = cluster.crash_server(ServerId(0)).unwrap();
        let outcome = cluster.recover_server(crashed).unwrap();
        assert!(outcome.restored_from_checkpoint);
        assert!(outcome.cancelled_migration.is_none());

        // Store-level reads (bypassing the network) and client-level reads
        // both see every record.
        let server = cluster.server(ServerId(0)).unwrap();
        let session = server.store().start_session();
        for key in (0..2000u64).step_by(131) {
            assert_eq!(
                session.read(key).unwrap(),
                Some(vec![7u8; 128]),
                "store-level read of key {key} failed after recovery"
            );
        }
        let mut client = cluster.client(ClientConfig::default());
        for key in (0..2000u64).step_by(173) {
            assert_eq!(client.read(key), Some(vec![7u8; 128]));
        }
        cluster.shutdown();
    }

    #[test]
    fn crash_without_checkpoint_comes_back_empty_but_owning_its_ranges() {
        let mut cluster = Cluster::start(ClusterConfig::two_server_test());
        {
            let mut client = cluster.client(ClientConfig::default());
            assert!(client.upsert(1, b"volatile".to_vec()));
        }
        let crashed = cluster.crash_server(ServerId(0)).unwrap();
        assert!(crashed.checkpoint.is_none());
        let outcome = cluster.recover_server(crashed).unwrap();
        assert!(!outcome.restored_from_checkpoint);
        assert!(!outcome.restored_ranges.is_empty());

        // The un-checkpointed write is gone, but the server serves again.
        let mut client = cluster.client(ClientConfig::default());
        assert_eq!(client.read(1), None);
        assert!(client.upsert(2, b"fresh".to_vec()));
        assert_eq!(client.read(2).as_deref(), Some(&b"fresh"[..]));
        cluster.shutdown();
    }

    #[test]
    fn crashing_an_unknown_server_is_an_error() {
        let mut cluster = Cluster::start(ClusterConfig::two_server_test());
        assert!(cluster.crash_server(ServerId(42)).is_err());
        cluster.shutdown();
    }
}
