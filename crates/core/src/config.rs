//! Server, client, and migration configuration.

use std::time::Duration;

use shadowfax_faster::FasterConfig;
use shadowfax_net::{LivenessConfig, SessionConfig};

use crate::ServerId;

/// How a server validates that it owns the records referenced by a request
/// batch (paper §3.2 / Figure 15).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OwnershipCheck {
    /// Compare the batch's view number against the server's current view —
    /// one integer comparison per batch (Shadowfax's approach).
    ViewValidation,
    /// Hash every key in the batch and look it up in the server's set of
    /// owned hash ranges (the baseline Figure 15 compares against).
    HashValidation,
}

/// Which migration protocol the source runs during scale-out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationMode {
    /// Shadowfax: parallel migration of in-memory records; chains that extend
    /// onto the SSD are shipped as indirection records pointing at the shared
    /// tier (paper §3.3.2).
    Shadowfax,
    /// Rocksteady-style baseline: migrate in-memory records, then a single
    /// thread sequentially scans the on-SSD log and ships the remaining live
    /// records (paper §4.1, Figure 10c).
    Rocksteady,
}

/// Knobs for the migration protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationConfig {
    /// Protocol variant.
    pub mode: MigrationMode,
    /// How long the source samples hot records before transferring ownership.
    pub sampling_duration: Duration,
    /// Whether sampled hot records are shipped with the ownership transfer
    /// (disable to reproduce Figure 14's "No Sampling" line).
    pub ship_sampled_records: bool,
    /// Records per migration batch sent from each source thread.
    pub records_per_batch: usize,
    /// Hash-table buckets each source thread scans per dispatch-loop
    /// iteration during the Migrate phase (bounds migration's CPU share so
    /// request processing stays prioritized).
    pub buckets_per_iteration: usize,
    /// On-SSD log bytes the Rocksteady scan reads per iteration.
    pub disk_scan_bytes_per_iteration: usize,
    /// Maximum pending operations retried per dispatch-loop iteration at the
    /// target (bounds time spent on shared-tier fetches).
    pub pending_retries_per_iteration: usize,
    /// Liveness of the migration peer: heartbeat pacing and the silence
    /// budget after which the peer is declared dead and the migration is
    /// cancelled (paper §3.3.1).  The target tolerates twice this budget
    /// before declaring the source dead, so the source (which also sees
    /// transport errors first) always wins the race to cancel cleanly.
    pub liveness: LivenessConfig,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        MigrationConfig {
            mode: MigrationMode::Shadowfax,
            sampling_duration: Duration::from_millis(100),
            ship_sampled_records: true,
            records_per_batch: 512,
            buckets_per_iteration: 64,
            disk_scan_bytes_per_iteration: 256 * 1024,
            pending_retries_per_iteration: 256,
            liveness: LivenessConfig::default(),
        }
    }
}

/// Configuration of one Shadowfax server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The server's cluster-wide id.
    pub id: ServerId,
    /// Number of dispatch threads (one per vCPU in the paper's deployment).
    pub threads: usize,
    /// FASTER instance sizing.
    pub faster: FasterConfig,
    /// Ownership validation strategy.
    pub ownership_check: OwnershipCheck,
    /// Migration behaviour.
    pub migration: MigrationConfig,
}

impl ServerConfig {
    /// A small configuration for tests: 2 threads, tiny FASTER instance.
    pub fn small_for_tests(id: ServerId) -> Self {
        ServerConfig {
            id,
            threads: 2,
            faster: FasterConfig::small_for_tests(),
            ownership_check: OwnershipCheck::ViewValidation,
            migration: MigrationConfig {
                sampling_duration: Duration::from_millis(20),
                ..MigrationConfig::default()
            },
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on unusable parameter combinations.
    pub fn validate(&self) {
        assert!(self.threads >= 1, "a server needs at least one thread");
        self.faster.validate();
        assert!(self.migration.records_per_batch > 0);
        assert!(self.migration.buckets_per_iteration > 0);
    }

    /// The server's base network address.
    pub fn address(&self) -> String {
        format!("sv{}", self.id.0)
    }
}

/// Configuration of one Shadowfax client thread.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// This client thread's id; used to spread client threads across server
    /// dispatch threads.
    pub thread_id: usize,
    /// Session batching/pipelining parameters.
    pub session: SessionConfig,
    /// Value size used when the client creates records.
    pub value_size: usize,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            thread_id: 0,
            session: SessionConfig::default(),
            value_size: 256,
        }
    }
}

impl ClientConfig {
    /// Builder-style thread id override.
    pub fn with_thread_id(mut self, id: usize) -> Self {
        self.thread_id = id;
        self
    }

    /// Builder-style session override.
    pub fn with_session(mut self, session: SessionConfig) -> Self {
        self.session = session;
        self
    }
}

// ServerId lives in lib.rs; re-exported here for the doc examples.
#[allow(unused_imports)]
use crate::hash_range::HashRange;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_config_is_valid() {
        ServerConfig::small_for_tests(ServerId(3)).validate();
        assert_eq!(ServerConfig::small_for_tests(ServerId(3)).address(), "sv3");
    }

    #[test]
    fn default_migration_config_is_shadowfax_with_sampling() {
        let m = MigrationConfig::default();
        assert_eq!(m.mode, MigrationMode::Shadowfax);
        assert!(m.ship_sampled_records);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let mut c = ServerConfig::small_for_tests(ServerId(0));
        c.threads = 0;
        c.validate();
    }

    #[test]
    fn client_config_builders() {
        let c = ClientConfig::default().with_thread_id(5);
        assert_eq!(c.thread_id, 5);
        assert_eq!(c.value_size, 256);
    }
}
