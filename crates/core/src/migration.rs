//! The scale-out / migration protocol (paper §3.3).
//!
//! Migration moves ownership of a set of hash ranges from a *source* server
//! to a *target* server and then moves the records themselves.  It is driven
//! by the source as a sequence of phases — Sampling, Prepare, Transfer,
//! Migrate, Complete — whose transitions happen over asynchronous global cuts
//! (epoch bumps): no dispatch thread is ever stalled; each simply observes the
//! new phase between request batches.
//!
//! * **Sampling** — ownership is remapped at the metadata store (both views
//!   advance, a dependency is recorded), and the source starts copying
//!   accessed records in the migrating ranges to its log tail so a small hot
//!   set can be shipped with the ownership transfer.
//! * **Prepare** — the source tells the target that transfer is imminent
//!   (`PrepForTransfer`); the target starts pending requests for the ranges.
//! * **Transfer** — the source moves into its new view (it stops serving the
//!   ranges) and, once every thread has crossed that cut, sends
//!   `TakeOwnership` followed by `PushHotRecords` with the sampled hot
//!   records; the target starts serving the ranges immediately.
//! * **Migrate** — every source thread walks its own disjoint region of the
//!   hash table, shipping in-memory records and, for chains that extend onto
//!   the SSD, *indirection records* naming the shared-tier location
//!   (`MigrationMode::Shadowfax`), or — for the Rocksteady baseline — a
//!   single thread sequentially scans the on-SSD log afterwards.
//! * **Complete** — the source sends `CompleteMigration`, checkpoints, and
//!   marks its side complete at the metadata store; the target does the same
//!   once every shipped record has been inserted.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use shadowfax_faster::{
    take_checkpoint, Address, FasterSession, KeyHash, ReadOutcome, RecordFlags, RecordOwned,
};
use shadowfax_hlog::{LogScanner, RecordHeader, RECORD_HEADER_BYTES};
use shadowfax_net::PeerLiveness;
use shadowfax_storage::{LogId, SharedBlobTier, TierRecord, TierService};

use crate::config::MigrationMode;
use crate::hash_range::{HashRange, RangeSet};
use crate::indirection::IndirectionRecord;
use crate::messages::{MigratedItem, MigrationAckPhase, MigrationMsg};
use crate::server::{Server, ServerMigConn};
use crate::ServerId;

/// Source-side migration phases (paper §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SourcePhase {
    /// Sampling hot records; still serving the old view.
    Sampling = 0,
    /// Told the target that transfer is imminent.
    Prepare = 1,
    /// Moved into the new view; ownership handed to the target.
    Transfer = 2,
    /// Threads are shipping records in parallel.
    Migrate = 3,
    /// (Rocksteady baseline only) a single thread is scanning the on-SSD log.
    DiskScan = 4,
    /// All records shipped; checkpointing and finishing up.
    Complete = 5,
}

impl SourcePhase {
    fn from_u8(v: u8) -> SourcePhase {
        match v {
            0 => SourcePhase::Sampling,
            1 => SourcePhase::Prepare,
            2 => SourcePhase::Transfer,
            3 => SourcePhase::Migrate,
            4 => SourcePhase::DiskScan,
            _ => SourcePhase::Complete,
        }
    }

    /// The label this phase is recorded under on the migration timeline.
    pub fn label(self) -> &'static str {
        match self {
            SourcePhase::Sampling => "sampling",
            SourcePhase::Prepare => "prepare",
            SourcePhase::Transfer => "transfer",
            SourcePhase::Migrate => "migrate",
            SourcePhase::DiskScan => "disk-scan",
            SourcePhase::Complete => "complete",
        }
    }
}

/// How the target treats requests in the migrating ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PendMode {
    /// Ownership transfer is imminent but has not happened: pend everything
    /// (the target's Prepare phase).
    PendAll,
    /// The target owns the ranges; pend only operations whose record has not
    /// arrived yet (the target's Receive phase).
    PendMissing,
}

/// Target-side state for an incoming migration.
#[derive(Debug)]
pub struct IncomingMigration {
    /// Migration id assigned by the metadata store.
    pub migration_id: u64,
    /// The ranges being received.
    pub ranges: RangeSet,
    /// Current pending rule.
    pub mode: PendMode,
    /// The source server.
    pub source: ServerId,
    /// Items received so far (records + indirection records).
    pub items_received: u64,
    /// Total items the source reported in `CompleteMigration` (`None` until
    /// that message arrives).
    pub expected_items: Option<u64>,
    /// When the first migration message arrived.
    pub started: Instant,
    /// When the source was last heard from (any migration message for this
    /// id, heartbeats included).  The target declares the source dead — and
    /// cancels the migration — when this goes silent past twice the
    /// liveness deadline.
    pub last_source_msg: Instant,
}

/// A report describing a finished migration, kept for benchmarking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationReport {
    /// Migration id.
    pub migration_id: u64,
    /// Role of the reporting server.
    pub role: MigrationRole,
    /// Bytes of record data shipped out of (or into) main memory.
    pub bytes_from_memory: u64,
    /// Full records shipped.
    pub records_moved: u64,
    /// Indirection records shipped.
    pub indirection_records: u64,
    /// Bytes read from the SSD by the Rocksteady scan (0 for Shadowfax).
    pub ssd_bytes_scanned: u64,
    /// Wall-clock duration from start to completion, in milliseconds.
    pub duration_ms: u64,
}

/// Which side of a migration a report describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationRole {
    /// The server that gave up the ranges.
    Source,
    /// The server that received them.
    Target,
}

/// Cursor over the hash-table region one source thread is responsible for.
#[derive(Debug)]
pub(crate) struct RegionCursor {
    next_bucket: usize,
    end_bucket: usize,
}

/// Source-side migration state shared by all dispatch threads.
pub struct OutgoingMigration {
    pub(crate) migration_id: u64,
    pub(crate) target: ServerId,
    pub(crate) ranges: Vec<HashRange>,
    pub(crate) new_view: u64,
    /// The view the metadata store assigned the target; every source→target
    /// message is tagged with it.
    pub(crate) target_view: u64,
    pub(crate) mode: MigrationMode,
    pub(crate) phase: AtomicU8,
    pub(crate) started: Instant,
    /// Set once the epoch action advancing out of Sampling has been scheduled.
    pub(crate) prepare_scheduled: AtomicBool,
    pub(crate) prep_sent: AtomicBool,
    pub(crate) ownership_sent: AtomicBool,
    pub(crate) complete_sent: AtomicBool,
    /// Per-thread loop generations recorded when the serving view flipped;
    /// the hot set is read only after every thread has advanced past these.
    pub(crate) view_flip_generations: Mutex<Option<Vec<u64>>>,
    /// Per-thread hash-table regions.
    pub(crate) regions: Vec<Mutex<RegionCursor>>,
    pub(crate) regions_done: AtomicUsize,
    /// Control connection to the target (thread 0 of its migration fabric).
    pub(crate) control: Mutex<ServerMigConn>,
    /// Liveness of the target, observed on the control connection: any
    /// received message is proof of life; heartbeats guarantee traffic
    /// during quiet phases; transport errors declare death immediately.
    pub(crate) liveness: Mutex<PeerLiveness>,
    /// Rocksteady disk-scan cursor.
    pub(crate) disk_cursor: Mutex<Address>,
    // Accounting (Figure 13).
    pub(crate) bytes_from_memory: AtomicU64,
    pub(crate) records_sent: AtomicU64,
    pub(crate) indirections_sent: AtomicU64,
    pub(crate) ssd_bytes_scanned: AtomicU64,
    pub(crate) total_items: AtomicU64,
    /// The owning server's migration timeline; every phase transition is
    /// stamped here under `migration.phase` (Fig. 11 impact windows).
    pub(crate) timeline: Arc<shadowfax_obs::EventTimeline>,
}

impl std::fmt::Debug for OutgoingMigration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OutgoingMigration")
            .field("id", &self.migration_id)
            .field("target", &self.target)
            .field("phase", &self.phase())
            .finish()
    }
}

impl OutgoingMigration {
    /// The current source phase.
    pub fn phase(&self) -> SourcePhase {
        SourcePhase::from_u8(self.phase.load(Ordering::SeqCst))
    }

    fn set_phase(&self, p: SourcePhase) {
        self.phase.store(p as u8, Ordering::SeqCst);
        self.timeline
            .record("migration.phase", p.label(), self.migration_id);
    }
}

/// A completed outgoing migration still waiting for the target's final
/// acknowledgement (see [`Server::drive_finishing`]).
pub(crate) struct FinishingMigration {
    pub(crate) migration_id: u64,
    pub(crate) target: ServerId,
    /// Kept alive for its control connection.
    pub(crate) outgoing: Arc<OutgoingMigration>,
}

/// The result of pulling one step from a [`MigrationBatchIter`].
#[derive(Debug)]
pub enum BatchPull {
    /// A batch of records / indirection records ready to ship.
    Batch(Vec<MigratedItem>),
    /// A bounded slice of the region was scanned but a full batch has not
    /// accumulated yet; pull again.
    Pending,
    /// The thread's region is exhausted and every batch has been returned.
    Exhausted,
}

/// A pull-based iterator over the record batches one dispatch thread
/// contributes to the Migrate phase.
///
/// Each [`MigrationBatchIter::next_batch`] call scans at most
/// `buckets_per_iteration` hash-table buckets of the thread's region (so
/// migration work stays interleaved with request processing) and hands back
/// a batch once `records_per_batch` items have accumulated or the region is
/// done.  The dispatch loop pulls batches from this iterator and ships each
/// one over the thread's migration link — the transport underneath (the
/// in-process fabric or a TCP migration connection) never influences how
/// batches are produced.
pub struct MigrationBatchIter<'a> {
    server: &'a Arc<Server>,
    outgoing: &'a Arc<OutgoingMigration>,
    state: &'a mut SourceThreadState,
    session: &'a FasterSession,
}

impl<'a> MigrationBatchIter<'a> {
    pub(crate) fn new(
        server: &'a Arc<Server>,
        outgoing: &'a Arc<OutgoingMigration>,
        state: &'a mut SourceThreadState,
        session: &'a FasterSession,
    ) -> Self {
        MigrationBatchIter {
            server,
            outgoing,
            state,
            session,
        }
    }

    /// Pulls the next step: a full (or final partial) batch, a bounded
    /// amount of scanning progress, or region exhaustion.
    pub fn next_batch(&mut self) -> BatchPull {
        let thread_id = self.state.thread_id;
        let (start, end) = {
            let mut cursor = self.outgoing.regions[thread_id].lock();
            if cursor.next_bucket >= cursor.end_bucket {
                (cursor.end_bucket, cursor.end_bucket)
            } else {
                let start = cursor.next_bucket;
                let end = (start + self.server.config.migration.buckets_per_iteration)
                    .min(cursor.end_bucket);
                cursor.next_bucket = end;
                (start, end)
            }
        };
        if start < end {
            self.server
                .collect_region(self.outgoing, self.state, start..end, self.session);
        }
        let finished = {
            let cursor = self.outgoing.regions[thread_id].lock();
            cursor.next_bucket >= cursor.end_bucket
        };
        if self.state.batch.len() >= self.server.config.migration.records_per_batch
            || (finished && !self.state.batch.is_empty())
        {
            self.state.batch_bytes = 0;
            return BatchPull::Batch(std::mem::take(&mut self.state.batch));
        }
        if finished {
            BatchPull::Exhausted
        } else {
            BatchPull::Pending
        }
    }
}

/// Per-thread state used while contributing to an outgoing migration.
pub(crate) struct SourceThreadState {
    pub(crate) thread_id: usize,
    /// Lazily created connection to the target for record batches.
    pub(crate) records_conn: Option<ServerMigConn>,
    pub(crate) region_done_reported: bool,
    pub(crate) batch: Vec<MigratedItem>,
    pub(crate) batch_bytes: usize,
    /// The migration id the per-thread state belongs to (reset across
    /// migrations).
    pub(crate) migration_id: Option<u64>,
}

impl SourceThreadState {
    pub(crate) fn new(thread_id: usize) -> Self {
        SourceThreadState {
            thread_id,
            records_conn: None,
            region_done_reported: false,
            batch: Vec::new(),
            batch_bytes: 0,
            migration_id: None,
        }
    }

    fn reset_for(&mut self, migration_id: u64) {
        if self.migration_id != Some(migration_id) {
            self.migration_id = Some(migration_id);
            self.records_conn = None;
            self.region_done_reported = false;
            self.batch.clear();
            self.batch_bytes = 0;
        }
    }
}

impl Server {
    /// Starts migrating `ranges` from this server to `target` (the paper's
    /// `Migrate()` RPC, §3.3).  Returns the migration id.
    ///
    /// # Errors
    ///
    /// Fails if a migration is already in flight at this server, if the
    /// metadata store rejects the ownership transfer, or if the target cannot
    /// be reached.
    pub fn start_migration(
        self: &Arc<Self>,
        ranges: Vec<HashRange>,
        target: ServerId,
    ) -> Result<u64, String> {
        if self.outgoing.read().is_some() {
            return Err("a migration is already in progress at this server".into());
        }
        let snapshot = self.meta.snapshot();
        let target_meta = snapshot
            .server(target)
            .ok_or_else(|| format!("unknown target server {target:?}"))?
            .clone();
        // Step 1 (Sampling phase entry): atomically remap ownership, advance
        // both views, and record the recovery dependency.
        let (migration_id, new_source_view, new_target_view) = self
            .meta
            .transfer_ownership(self.id(), target, &ranges)
            .map_err(|e| e.to_string())?;
        // Step 2: start sampling hot records in the migrating ranges.
        if self.config.migration.ship_sampled_records {
            let filter_ranges = ranges.clone();
            self.store.begin_sampling(Box::new(move |hash| {
                filter_ranges.iter().any(|r| r.contains(hash))
            }));
        }
        // Control connection to the target's thread-0 migration endpoint.
        let control = match self.connect_migration(&target_meta.address, target, 0) {
            Some(control) => control,
            None => {
                // Ownership already transferred at the metadata store above;
                // cancel it, or the failed start would strand the ranges on
                // a target that never learned a migration existed.
                let _ = self.store.end_sampling();
                let _ = self.meta.cancel_migration(migration_id);
                self.refresh_ownership_from_meta();
                self.note_cancellation(migration_id, 0, 0, "target unreachable at start");
                return Err(format!(
                    "cannot connect to target {target} at {}/m0 \
                     (migration {migration_id} cancelled, ownership rolled back)",
                    target_meta.address
                ));
            }
        };

        let buckets = self.store.index().num_buckets();
        let threads = self.config.threads;
        let per = buckets.div_ceil(threads);
        let regions = (0..threads)
            .map(|t| {
                Mutex::new(RegionCursor {
                    next_bucket: t * per,
                    end_bucket: ((t + 1) * per).min(buckets),
                })
            })
            .collect();

        let outgoing = Arc::new(OutgoingMigration {
            migration_id,
            target,
            ranges,
            new_view: new_source_view,
            target_view: new_target_view,
            mode: self.config.migration.mode,
            phase: AtomicU8::new(SourcePhase::Sampling as u8),
            started: Instant::now(),
            prepare_scheduled: AtomicBool::new(false),
            prep_sent: AtomicBool::new(false),
            ownership_sent: AtomicBool::new(false),
            complete_sent: AtomicBool::new(false),
            view_flip_generations: Mutex::new(None),
            regions,
            regions_done: AtomicUsize::new(0),
            control: Mutex::new(control),
            liveness: Mutex::new(PeerLiveness::new(self.config.migration.liveness)),
            disk_cursor: Mutex::new(self.store.log().begin_address()),
            bytes_from_memory: AtomicU64::new(0),
            records_sent: AtomicU64::new(0),
            indirections_sent: AtomicU64::new(0),
            ssd_bytes_scanned: AtomicU64::new(0),
            total_items: AtomicU64::new(0),
            timeline: Arc::clone(&self.timeline),
        });
        self.timeline.record(
            "migration.phase",
            SourcePhase::Sampling.label(),
            migration_id,
        );
        *self.outgoing.write() = Some(outgoing);
        Ok(migration_id)
    }

    /// The last completed migration's report, if any (source side keeps it in
    /// the completed-report slot of the metadata-free server state).
    pub fn last_migration_report(&self) -> Option<MigrationReport> {
        self.completed_report.lock().clone()
    }

    /// Contributes this thread's share of the outgoing migration, if one is
    /// in flight.  Returns `true` if any work was done.
    pub(crate) fn drive_outgoing(
        self: &Arc<Self>,
        state: &mut SourceThreadState,
        session: &FasterSession,
    ) -> bool {
        let Some(outgoing) = self.outgoing.read().clone() else {
            return false;
        };
        state.reset_for(outgoing.migration_id);
        let is_driver = state.thread_id == 0;
        // Drain the control connection (acknowledgements, heartbeat echoes),
        // track the target's liveness, and heartbeat it.  A dead target
        // cancels the migration here — at whatever phase it was in — instead
        // of wedging the dependency at the metadata store forever.
        if is_driver && self.drive_source_liveness(&outgoing, session) {
            return true;
        }
        match outgoing.phase() {
            SourcePhase::Sampling => {
                if is_driver
                    && outgoing.started.elapsed() >= self.config.migration.sampling_duration
                    && !outgoing.prepare_scheduled.swap(true, Ordering::SeqCst)
                {
                    // Advance to Prepare over a global cut: the phase flips
                    // only after every dispatch thread has refreshed, i.e.
                    // completed its part of the Sampling phase.
                    let out = Arc::clone(&outgoing);
                    self.store.epoch().bump_with_action(move || {
                        out.set_phase(SourcePhase::Prepare);
                    });
                    return true;
                }
                false
            }
            SourcePhase::Prepare => {
                if is_driver && !outgoing.prep_sent.swap(true, Ordering::SeqCst) {
                    let target_view = outgoing.target_view;
                    let _ = outgoing
                        .control
                        .lock()
                        .send_msg(MigrationMsg::PrepForTransfer {
                            migration_id: outgoing.migration_id,
                            ranges: outgoing.ranges.clone(),
                            source: self.id(),
                            target_view,
                        });
                    // Transfer begins once every thread has completed Prepare.
                    let server = Arc::clone(self);
                    let out = Arc::clone(&outgoing);
                    self.store.epoch().bump_with_action(move || {
                        // The migration may have been cancelled (dead target)
                        // between scheduling this action and the cut
                        // completing; flipping the view for a dead migration
                        // would clobber the post-cancellation ownership map.
                        // The check synchronizes with the cancellation path
                        // on the `outgoing` slot lock: cancellation detaches
                        // the slot under the write lock before it touches
                        // the view, so whoever holds the slot wins.
                        let guard = server.outgoing.read();
                        if guard.as_ref().map(|o| o.migration_id) != Some(out.migration_id) {
                            return;
                        }
                        // Transfer-phase entry: move into the new view.  From
                        // this instant batches tagged with the old view are
                        // rejected, which pushes the cut out to clients over
                        // their sessions (paper §3.2.1).
                        server.serving_view.store(out.new_view, Ordering::SeqCst);
                        server.owned.write().remove(&out.ranges);
                        // Record each thread's position in its operation
                        // sequence; the hot set is shipped only after every
                        // thread has moved past it (the paper's global cut is
                        // taken at operation boundaries, §2.1/§3.2.1).
                        let generations = server
                            .loop_generation
                            .iter()
                            .map(|g| g.load(Ordering::SeqCst))
                            .collect();
                        *out.view_flip_generations.lock() = Some(generations);
                        out.set_phase(SourcePhase::Transfer);
                    });
                    return true;
                }
                false
            }
            SourcePhase::Transfer => {
                if !is_driver {
                    return false;
                }
                // Wait until every dispatch thread has crossed an operation
                // boundary after the view flip, so no batch accepted in the
                // old view is still applying updates.
                let cut_passed = {
                    let recorded = outgoing.view_flip_generations.lock();
                    match recorded.as_ref() {
                        Some(at_flip) => at_flip
                            .iter()
                            .enumerate()
                            .all(|(t, g)| self.loop_generation[t].load(Ordering::SeqCst) > *g),
                        None => false,
                    }
                };
                if !cut_passed {
                    return false;
                }
                if !outgoing.ownership_sent.swap(true, Ordering::SeqCst) {
                    // Read the hot set's current values now — after the cut —
                    // so every update acknowledged by the source is included.
                    let sampled = if self.config.migration.ship_sampled_records {
                        let keys = self.store.end_sampling();
                        let mut records = Vec::with_capacity(keys.len());
                        for key in keys {
                            if let Ok(ReadOutcome::Found { record, .. }) =
                                self.store.read_record_for(key, session)
                            {
                                if !record.is_indirection() && !record.is_tombstone() {
                                    records.push((key, record.value().to_vec()));
                                }
                            }
                        }
                        records
                    } else {
                        let _ = self.store.end_sampling();
                        Vec::new()
                    };
                    // The control link is ordered, so the target always sees
                    // the ownership flip before the hot set that follows it.
                    let control = outgoing.control.lock();
                    let _ = control.send_msg(MigrationMsg::TakeOwnership {
                        migration_id: outgoing.migration_id,
                        ranges: outgoing.ranges.clone(),
                        target_view: outgoing.target_view,
                    });
                    let _ = control.send_msg(MigrationMsg::PushHotRecords {
                        migration_id: outgoing.migration_id,
                        target_view: outgoing.target_view,
                        records: sampled,
                    });
                    drop(control);
                    outgoing.set_phase(SourcePhase::Migrate);
                    return true;
                }
                false
            }
            SourcePhase::Migrate => self.drive_migrate_phase(&outgoing, state, session),
            SourcePhase::DiskScan => {
                if is_driver {
                    self.drive_disk_scan(&outgoing, state, session)
                } else {
                    false
                }
            }
            SourcePhase::Complete => {
                if is_driver && !outgoing.complete_sent.swap(true, Ordering::SeqCst) {
                    let _ = outgoing
                        .control
                        .lock()
                        .send_msg(MigrationMsg::CompleteMigration {
                            migration_id: outgoing.migration_id,
                            target_view: outgoing.target_view,
                            total_items: outgoing.total_items.load(Ordering::SeqCst),
                        });
                    // Checkpoint so the post-migration state is independently
                    // recoverable, then mark our side complete (paper §3.3.1).
                    let cp = take_checkpoint(&self.store, session);
                    *self.latest_checkpoint.lock() = Some(cp);
                    let _ = self.meta.mark_complete(outgoing.migration_id, self.id());
                    let report = MigrationReport {
                        migration_id: outgoing.migration_id,
                        role: MigrationRole::Source,
                        bytes_from_memory: outgoing.bytes_from_memory.load(Ordering::Relaxed),
                        records_moved: outgoing.records_sent.load(Ordering::Relaxed),
                        indirection_records: outgoing.indirections_sent.load(Ordering::Relaxed),
                        ssd_bytes_scanned: outgoing.ssd_bytes_scanned.load(Ordering::Relaxed),
                        duration_ms: outgoing.started.elapsed().as_millis() as u64,
                    };
                    *self.completed_report.lock() = Some(report);
                    // Keep the control link alive until the target's final
                    // acknowledgement arrives: when the target runs in
                    // another OS process it cannot reach this process's
                    // metadata store, so the source marks the target side
                    // complete on its behalf (idempotent in-process, where
                    // the target already marked itself directly).
                    *self.finishing.lock() = Some(FinishingMigration {
                        migration_id: outgoing.migration_id,
                        target: outgoing.target,
                        outgoing: Arc::clone(&outgoing),
                    });
                    self.finishing_active.store(true, Ordering::SeqCst);
                    *self.outgoing.write() = None;
                    return true;
                }
                false
            }
        }
    }

    /// Collects the target's final `Ack { Completed }` for a migration whose
    /// source side already finished, then marks the target side complete at
    /// this process's metadata store.  A target that dies before finishing
    /// its side — detected by a transport error or heartbeat silence on the
    /// control link — cancels the migration instead of leaving the
    /// dependency pending forever.  Returns `true` if progress was made.
    pub(crate) fn drive_finishing(self: &Arc<Self>, session: &FasterSession) -> bool {
        // Fast path: no migration is waiting on its final ack.
        if !self.finishing_active.load(Ordering::Relaxed) {
            return false;
        }
        let mut slot = self.finishing.lock();
        let Some(fin) = slot.as_ref() else {
            return false;
        };
        let mut acked = false;
        let dead_reason = {
            let control = fin.outgoing.control.lock();
            let mut liveness = fin.outgoing.liveness.lock();
            let migration_id = fin.migration_id;
            self.poll_migration_control(migration_id, &control, &mut liveness, |msg| {
                if matches!(
                    msg,
                    MigrationMsg::Ack {
                        migration_id: id,
                        phase: MigrationAckPhase::Completed,
                    } if *id == migration_id
                ) {
                    acked = true;
                }
            })
        };
        if acked {
            let _ = self.meta.mark_complete(fin.migration_id, fin.target);
            *slot = None;
            self.finishing_active.store(false, Ordering::SeqCst);
            return true;
        }
        if let Some(reason) = dead_reason {
            let fin = slot.take().expect("finishing checked Some above");
            self.finishing_active.store(false, Ordering::SeqCst);
            drop(slot);
            self.cancel_finishing(fin, &reason, session);
            return true;
        }
        false
    }

    /// The shared control-link poll behind [`Server::drive_finishing`] and
    /// [`Server::drive_source_liveness`]: drains every available message
    /// (any receipt is proof of life, heartbeats are echoed here, everything
    /// else goes to `on_msg`), declares the peer dead on transport errors or
    /// a closed link, sends the next heartbeat when due, and returns the
    /// death reason if the peer is dead.
    ///
    /// Caller holds both the control and liveness locks (in that order).
    fn poll_migration_control(
        &self,
        migration_id: u64,
        control: &ServerMigConn,
        liveness: &mut PeerLiveness,
        mut on_msg: impl FnMut(&MigrationMsg),
    ) -> Option<String> {
        loop {
            match control.try_recv_msg() {
                Ok(Some(msg)) => {
                    liveness.record_recv();
                    if let MigrationMsg::Heartbeat { migration_id, .. } = msg {
                        let _ = control.send_msg(MigrationMsg::HeartbeatAck {
                            migration_id,
                            view: self.serving_view(),
                        });
                    } else {
                        on_msg(&msg);
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    liveness.declare_dead(format!("control link receive failed: {e}"));
                    break;
                }
            }
        }
        if !control.is_open() {
            liveness.declare_dead("control link closed");
        }
        if liveness.heartbeat_due() {
            let probe = MigrationMsg::Heartbeat {
                migration_id,
                view: self.serving_view(),
            };
            if let Err(e) = control.send_msg(probe) {
                liveness.declare_dead(format!("control link send failed: {}", e.error));
            }
        }
        liveness.check_dead()
    }

    /// Cancels a migration whose source side completed but whose target died
    /// before finishing its own: the dependency is unresolved at the
    /// metadata store, so ownership of the ranges rolls back to this server
    /// (the records are all still on its log — migration never removes
    /// them).  A no-op if the dependency resolved concurrently (the final
    /// ack can also arrive on a per-thread records link).
    pub(crate) fn cancel_finishing(
        self: &Arc<Self>,
        fin: FinishingMigration,
        reason: &str,
        session: &FasterSession,
    ) {
        if self.meta.cancel_migration(fin.migration_id).is_err() {
            // Already resolved (completed or cancelled elsewhere).
            return;
        }
        // Best-effort: a half-open target that revives must roll back too.
        let _ = fin
            .outgoing
            .control
            .lock()
            .send_msg(MigrationMsg::CancelMigration {
                migration_id: fin.migration_id,
                view: fin.outgoing.target_view,
            });
        let cp = take_checkpoint(&self.store, session);
        *self.latest_checkpoint.lock() = Some(cp);
        self.refresh_ownership_from_meta();
        self.note_cancellation(
            fin.migration_id,
            fin.outgoing.records_sent.load(Ordering::Relaxed)
                + fin.outgoing.indirections_sent.load(Ordering::Relaxed),
            fin.outgoing.liveness.lock().heartbeats_missed(),
            reason,
        );
    }

    /// Drains the outgoing migration's control connection, tracking the
    /// target's liveness and heartbeating it; called by the driver thread
    /// every dispatch iteration.  Returns `true` if the migration was
    /// cancelled (dead target, or the target asked for cancellation).
    fn drive_source_liveness(
        self: &Arc<Self>,
        outgoing: &Arc<OutgoingMigration>,
        session: &FasterSession,
    ) -> bool {
        let mut peer_cancel = false;
        let dead_reason = {
            let control = outgoing.control.lock();
            let mut liveness = outgoing.liveness.lock();
            let migration_id = outgoing.migration_id;
            // Acknowledgements and heartbeat echoes are proof of life only;
            // the one message with a side effect is the target asking for
            // cancellation.
            self.poll_migration_control(migration_id, &control, &mut liveness, |msg| {
                if matches!(
                    msg,
                    MigrationMsg::CancelMigration { migration_id: id, .. } if *id == migration_id
                ) {
                    peer_cancel = true;
                }
            })
        };
        if peer_cancel {
            return self.cancel_outgoing_migration(
                outgoing.migration_id,
                "target requested cancellation",
                session,
            );
        }
        if let Some(reason) = dead_reason {
            let why = format!("target {} declared dead: {reason}", outgoing.target);
            return self.cancel_outgoing_migration(outgoing.migration_id, &why, session);
        }
        false
    }

    /// Cancels the in-flight *outgoing* migration `migration_id` at this
    /// server (the source role of the paper's §3.3.1 cancellation):
    /// the dependency is cancelled at the metadata store (ownership of the
    /// migrating ranges rolls back to this server, both views advance), the
    /// post-cancellation state is checkpointed as the new recovery point,
    /// and the server re-adopts the post-cancellation ownership map — which
    /// bumps its serving view, fencing any frame the (possibly revived)
    /// target later sends from the dead migration epoch.
    ///
    /// Returns `false` if no outgoing migration with that id is in flight.
    pub(crate) fn cancel_outgoing_migration(
        self: &Arc<Self>,
        migration_id: u64,
        reason: &str,
        session: &FasterSession,
    ) -> bool {
        // Atomically detach the outgoing state: only the detaching caller
        // runs the rollback, and the ownership-transfer epoch action (which
        // re-checks this slot) can no longer clobber the rolled-back view.
        let outgoing = {
            let mut slot = self.outgoing.write();
            match slot.as_ref() {
                Some(o) if o.migration_id == migration_id => slot.take().expect("checked Some"),
                _ => return false,
            }
        };
        // Sampling may still be active if the cancellation landed early.
        let _ = self.store.end_sampling();
        // Cancel at the metadata store: the migrating ranges return to this
        // server and both views advance again (paper §3.3.1).  The records
        // themselves never left this server's log, so re-owning the ranges
        // loses nothing — records already shipped become unreachable
        // duplicates at the dead target.
        let cancelled_at_store = self.meta.cancel_migration(migration_id).is_ok();
        // Best-effort: tell a still-reachable target to roll back too.  The
        // serving-view fence (see the CancelMigration handler) is offered
        // only when the cancel actually won at the store: a cancel that
        // lost the race to a concurrent resolution must not advance a
        // healthy target's view past its registration — that would wedge
        // it exactly the way the fence exists to prevent.
        let _ = outgoing
            .control
            .lock()
            .send_msg(MigrationMsg::CancelMigration {
                migration_id,
                view: if cancelled_at_store {
                    outgoing.target_view
                } else {
                    0
                },
            });
        // Checkpoint the post-cancellation state as the new recovery point,
        // then adopt the post-cancellation ownership map and view.
        let cp = take_checkpoint(&self.store, session);
        *self.latest_checkpoint.lock() = Some(cp);
        self.refresh_ownership_from_meta();
        self.note_cancellation(
            migration_id,
            outgoing.records_sent.load(Ordering::Relaxed)
                + outgoing.indirections_sent.load(Ordering::Relaxed),
            outgoing.liveness.lock().heartbeats_missed(),
            reason,
        );
        true
    }

    /// Cancels the in-flight *incoming* migration `migration_id` at this
    /// server (the target role): in-flight migration state is dropped, the
    /// migrating ranges are given back, and the serving view advances so
    /// record pushes from the dead migration epoch are rejected as
    /// stale-view.  Returns `false` if no such incoming migration exists.
    pub(crate) fn cancel_incoming_migration(
        self: &Arc<Self>,
        migration_id: u64,
        reason: &str,
        session: &FasterSession,
    ) -> bool {
        let incoming = {
            let mut slot = self.incoming.lock();
            match slot.as_ref() {
                Some(m) if m.migration_id == migration_id => slot.take().expect("checked Some"),
                _ => return false,
            }
        };
        self.incoming_active.store(false, Ordering::SeqCst);
        self.stray_migration_items.lock().remove(&migration_id);
        // Roll ownership back.  In-process (shared metadata store) the
        // cancellation there is authoritative; a cross-process target cannot
        // reach the coordinating store — it applies the identical state
        // transition locally: drop the ranges, advance the view.  Either
        // way the serving view ends at target_view + 1, exactly what the
        // authoritative store records, so both sides agree on the fence.
        match self.meta.cancel_migration(migration_id) {
            Ok(_) => self.refresh_ownership_from_meta(),
            Err(_) => {
                self.owned.write().remove(incoming.ranges.ranges());
                self.serving_view.fetch_add(1, Ordering::SeqCst);
            }
        }
        // Batches that pended for the migrating ranges are orphaned now.
        // This must happen *after* the ownership rollback above: a dispatch
        // thread consumes the flush signal at most once per bump, so bumping
        // while `owned` still held the ranges would let it scan, reject
        // nothing, and later answer an orphaned batch from a store that only
        // received part of the data.
        self.pend_flush_epoch.fetch_add(1, Ordering::SeqCst);
        let cp = take_checkpoint(&self.store, session);
        *self.latest_checkpoint.lock() = Some(cp);
        self.note_cancellation(migration_id, incoming.items_received, 0, reason);
        true
    }

    /// Target-side liveness: cancels the incoming migration if the source
    /// has been silent past twice the liveness deadline (the factor of two
    /// lets the source — which also observes transport errors directly —
    /// win the race and cancel cleanly at the metadata store first).
    /// Driven by dispatch thread 0 every loop iteration.
    pub(crate) fn drive_incoming_liveness(self: &Arc<Self>, session: &FasterSession) -> bool {
        if !self.incoming_active.load(Ordering::Relaxed) {
            return false;
        }
        let deadline = self.config.migration.liveness.deadline() * 2;
        let stale = {
            let incoming = self.incoming.lock();
            match incoming.as_ref() {
                Some(m) if m.last_source_msg.elapsed() > deadline => {
                    Some((m.migration_id, m.source))
                }
                _ => None,
            }
        };
        let Some((migration_id, source)) = stale else {
            return false;
        };
        // Every heartbeat interval in the silent window counts as missed.
        let interval = self.config.migration.liveness.heartbeat_interval;
        let missed = (deadline.as_micros() / interval.as_micros().max(1)) as u64;
        self.heartbeats_missed.add(missed);
        let reason = format!("source silent for more than {deadline:?}");
        let cancelled = self.cancel_incoming_migration(migration_id, &reason, session);
        if cancelled {
            // Best-effort relay: a source that is merely stalled (not dead)
            // should cancel authoritatively at its metadata store right
            // away instead of waiting out its own silence budget.  If the
            // source is really gone the dial simply fails.  View 0: a
            // target does not know the view the source was assigned for
            // this migration, so it cannot offer a fence — the source
            // fences itself when it rolls back (see the CancelMigration
            // handler).
            let snapshot = self.meta.snapshot();
            if let Some(src) = snapshot.server(source) {
                if let Some(conn) = self.connect_migration(&src.address, source, 0) {
                    let _ = conn.send_msg(MigrationMsg::CancelMigration {
                        migration_id,
                        view: 0,
                    });
                }
            }
        }
        cancelled
    }

    /// Records a cancellation in the server's counters and on stderr (which
    /// multi-process tests capture into `target/test-logs/`).
    pub(crate) fn note_cancellation(
        &self,
        migration_id: u64,
        rolled_back: u64,
        missed: u64,
        reason: &str,
    ) {
        self.migrations_cancelled.inc();
        self.records_rolled_back.add(rolled_back);
        self.heartbeats_missed.add(missed);
        self.timeline
            .record("migration.phase", "cancelled", migration_id);
        eprintln!(
            "server {}: cancelled migration {migration_id} ({reason}); \
             {rolled_back} shipped records rolled back",
            self.id()
        );
    }

    /// The per-thread half of [`Server::drive_finishing`]: the target's
    /// final ack travels on whichever link delivered the finalizing message,
    /// which can be this thread's records link rather than the control link.
    pub(crate) fn drive_finishing_thread(&self, state: &SourceThreadState) -> bool {
        // Fast paths: nothing to wait for, or this thread has no link that
        // could carry the ack.  The atomic keeps the idle serving loop off
        // the shared mutex.
        if !self.finishing_active.load(Ordering::Relaxed) || state.records_conn.is_none() {
            return false;
        }
        let (id, target) = match self.finishing.lock().as_ref() {
            Some(fin) => (fin.migration_id, fin.target),
            None => return false,
        };
        if state.migration_id != Some(id) {
            return false;
        }
        let Some(conn) = &state.records_conn else {
            return false;
        };
        let mut acked = false;
        while let Ok(Some(msg)) = conn.try_recv_msg() {
            if matches!(
                msg,
                MigrationMsg::Ack {
                    migration_id,
                    phase: MigrationAckPhase::Completed,
                } if migration_id == id
            ) {
                acked = true;
            }
        }
        if acked {
            let _ = self.meta.mark_complete(id, target);
            *self.finishing.lock() = None;
            self.finishing_active.store(false, Ordering::SeqCst);
            return true;
        }
        false
    }

    /// One iteration of this thread's share of the Migrate phase: pull the
    /// next record batch from the thread's [`MigrationBatchIter`] and ship
    /// it over the thread's migration link.
    fn drive_migrate_phase(
        self: &Arc<Self>,
        outgoing: &Arc<OutgoingMigration>,
        state: &mut SourceThreadState,
        session: &FasterSession,
    ) -> bool {
        let thread_id = state.thread_id;
        if state.region_done_reported {
            // This thread is finished; thread 0 watches for global completion.
            if thread_id == 0 && outgoing.regions_done.load(Ordering::SeqCst) >= self.config.threads
            {
                let next = match outgoing.mode {
                    MigrationMode::Shadowfax => SourcePhase::Complete,
                    MigrationMode::Rocksteady => SourcePhase::DiskScan,
                };
                outgoing.set_phase(next);
                return true;
            }
            return false;
        }

        // Ensure this thread has its own migration connection to the target.
        if state.records_conn.is_none() {
            let snapshot = self.meta.snapshot();
            let Some(target_meta) = snapshot.server(outgoing.target).cloned() else {
                return false;
            };
            state.records_conn = self.connect_migration(
                &target_meta.address,
                outgoing.target,
                thread_id % target_meta.threads.max(1),
            );
        }

        match MigrationBatchIter::new(self, outgoing, state, session).next_batch() {
            BatchPull::Batch(items) => {
                self.ship_migration_items(outgoing, state, items);
                true
            }
            BatchPull::Pending => true,
            BatchPull::Exhausted => {
                state.region_done_reported = true;
                outgoing.regions_done.fetch_add(1, Ordering::SeqCst);
                true
            }
        }
    }

    /// Collects records for the migrating ranges from main-table buckets
    /// `region` and appends them to this thread's outgoing batch.
    fn collect_region(
        self: &Arc<Self>,
        outgoing: &Arc<OutgoingMigration>,
        state: &mut SourceThreadState,
        region: std::ops::Range<usize>,
        session: &FasterSession,
    ) {
        let log = self.store.log();
        let head = log.head_address();
        let guard = session.thread().protect();
        for snap in self.store.index().scan_region(region) {
            let mut addr = snap.entry.address;
            let mut seen_keys: Vec<u64> = Vec::new();
            while addr.is_valid() && addr >= log.begin_address() {
                if addr < head {
                    // The rest of this chain lives on the SSD / shared tier.
                    match outgoing.mode {
                        MigrationMode::Shadowfax => {
                            let representative = representative_hash(
                                snap.bucket,
                                snap.entry.tag,
                                self.store.index().table_bits(),
                            );
                            let ind = IndirectionRecord {
                                range: enclosing_range(&outgoing.ranges, HashRange::FULL),
                                chain_address: addr,
                                source_log: self.log_id(),
                                representative_hash: representative,
                            };
                            let item = MigratedItem::Indirection {
                                representative_hash: representative,
                                payload: ind.encode_value(),
                            };
                            outgoing.indirections_sent.fetch_add(1, Ordering::Relaxed);
                            self.push_migration_item(outgoing, state, item);
                        }
                        MigrationMode::Rocksteady => {
                            // The disk-scan phase will pick these up.
                        }
                    }
                    break;
                }
                let Ok(record) = log.read_record(addr, &guard) else {
                    break;
                };
                let key = record.key();
                let hash = KeyHash::of(key).raw();
                let in_range = outgoing.ranges.iter().any(|r| r.contains(hash));
                let is_dup = seen_keys.contains(&key);
                if in_range
                    && !is_dup
                    && !record.is_tombstone()
                    && !record.header.flags.contains(RecordFlags::INDIRECTION)
                {
                    let item = MigratedItem::Record {
                        key,
                        value: record.value().to_vec(),
                    };
                    outgoing.records_sent.fetch_add(1, Ordering::Relaxed);
                    self.push_migration_item(outgoing, state, item);
                }
                if in_range {
                    seen_keys.push(key);
                }
                addr = record.header.prev;
            }
        }
        drop(guard);
    }

    fn push_migration_item(
        &self,
        outgoing: &Arc<OutgoingMigration>,
        state: &mut SourceThreadState,
        item: MigratedItem,
    ) {
        let bytes = item.wire_size();
        outgoing
            .bytes_from_memory
            .fetch_add(bytes as u64, Ordering::Relaxed);
        outgoing.total_items.fetch_add(1, Ordering::Relaxed);
        state.batch_bytes += bytes;
        state.batch.push(item);
    }

    /// Ships one pulled batch on this thread's migration link, falling back
    /// to the control link if the thread's link is missing or fails.  If the
    /// target is unreachable on both, the batch is put back for retry:
    /// every item in it is already counted in `total_items`, so dropping it
    /// would leave the target waiting forever.  In the rare case a transport
    /// consumes a message it could not deliver, the count is rolled back
    /// instead, keeping the target's expected total honest.
    fn ship_migration_items(
        &self,
        outgoing: &Arc<OutgoingMigration>,
        state: &mut SourceThreadState,
        items: Vec<MigratedItem>,
    ) {
        if items.is_empty() {
            return;
        }
        let count = items.len() as u64;
        let mut msg = MigrationMsg::PushRecordBatch {
            migration_id: outgoing.migration_id,
            target_view: outgoing.target_view,
            items,
        };
        if let Some(conn) = &state.records_conn {
            match conn.send_msg(msg) {
                Ok(()) => {
                    // Drain acknowledgements/noise so the channel never
                    // backs up.
                    while let Ok(Some(_)) = conn.try_recv_msg() {}
                    return;
                }
                Err(err) => {
                    // The link failed; drop it so the next iteration redials.
                    state.records_conn = None;
                    match err.msg {
                        Some(recovered) => msg = recovered,
                        None => {
                            outgoing.total_items.fetch_sub(count, Ordering::SeqCst);
                            return;
                        }
                    }
                }
            }
        }
        match outgoing.control.lock().send_msg(msg) {
            Ok(()) => {}
            Err(err) => match err.msg {
                Some(MigrationMsg::PushRecordBatch { mut items, .. }) => {
                    items.append(&mut state.batch);
                    state.batch = items;
                }
                _ => {
                    outgoing.total_items.fetch_sub(count, Ordering::SeqCst);
                }
            },
        }
    }

    /// One bounded slice of the Rocksteady baseline's sequential SSD scan.
    ///
    /// The cursor always resumes from the scanner's own position (a record or
    /// page boundary), never from an arbitrary byte offset, so no record is
    /// ever skipped at a chunk boundary.
    fn drive_disk_scan(
        self: &Arc<Self>,
        outgoing: &Arc<OutgoingMigration>,
        state: &mut SourceThreadState,
        session: &FasterSession,
    ) -> bool {
        let log = self.store.log();
        let head = log.head_address();
        let start = *outgoing.disk_cursor.lock();
        if start >= head {
            // Retry any batch a failed send put back before declaring the
            // scan complete — the items are counted in `total_items`, so
            // completing with them unshipped would wedge the target.
            let items = std::mem::take(&mut state.batch);
            state.batch_bytes = 0;
            self.ship_migration_items(outgoing, state, items);
            if state.batch.is_empty() {
                outgoing.set_phase(SourcePhase::Complete);
            }
            return true;
        }
        let budget = self.config.migration.disk_scan_bytes_per_iteration as u64;
        let mut records: Vec<(Address, RecordOwned)> = Vec::new();
        let mut scanner = LogScanner::new(log, start, head, session.thread());
        let mut exhausted = true;
        for (addr, record) in scanner.by_ref() {
            records.push((addr, record));
            if addr.raw().saturating_sub(start.raw()) >= budget {
                exhausted = false;
                break;
            }
        }
        let new_cursor = if exhausted { head } else { scanner.position() };
        for (addr, record) in records {
            let hash = KeyHash::of(record.key()).raw();
            if !outgoing.ranges.iter().any(|r| r.contains(hash)) || record.is_tombstone() {
                continue;
            }
            // Only ship records that are still the live (newest) version.
            let live = matches!(
                self.store.read_record_for(record.key(), session),
                Ok(ReadOutcome::Found { address, .. }) if address == addr
            );
            if !live {
                continue;
            }
            let item = MigratedItem::Record {
                key: record.key(),
                value: record.value().to_vec(),
            };
            outgoing.records_sent.fetch_add(1, Ordering::Relaxed);
            outgoing.total_items.fetch_add(1, Ordering::Relaxed);
            state.batch.push(item);
        }
        // The scan read this whole slice of the stable region sequentially.
        outgoing
            .ssd_bytes_scanned
            .fetch_add(new_cursor.raw() - start.raw(), Ordering::Relaxed);
        *outgoing.disk_cursor.lock() = new_cursor;
        let items = std::mem::take(&mut state.batch);
        state.batch_bytes = 0;
        self.ship_migration_items(outgoing, state, items);
        if new_cursor >= head && state.batch.is_empty() {
            outgoing.set_phase(SourcePhase::Complete);
        }
        true
    }

    // ------------------------------------------------------------------
    // Target side
    // ------------------------------------------------------------------

    /// Handles one migration message arriving from a peer server.
    pub(crate) fn handle_migration_msg(
        self: &Arc<Self>,
        msg: MigrationMsg,
        conn: &ServerMigConn,
        session: &FasterSession,
    ) {
        // Any message for the in-flight incoming migration is proof the
        // source is alive; the target's liveness deadline restarts.
        if let MigrationMsg::PrepForTransfer { migration_id, .. }
        | MigrationMsg::TakeOwnership { migration_id, .. }
        | MigrationMsg::PushHotRecords { migration_id, .. }
        | MigrationMsg::PushRecordBatch { migration_id, .. }
        | MigrationMsg::CompleteMigration { migration_id, .. }
        | MigrationMsg::Heartbeat { migration_id, .. }
        | MigrationMsg::HeartbeatAck { migration_id, .. } = &msg
        {
            self.touch_incoming(*migration_id);
        }
        match msg {
            MigrationMsg::PrepForTransfer {
                migration_id,
                ranges,
                source,
                target_view,
            } => {
                // A prepare tagged with a view older than the one we already
                // serve is from a dead migration epoch: ignore it.
                if target_view < self.serving_view() {
                    return;
                }
                // Record batches can beat this message over TCP (they travel
                // on different connections); fold any strays back in.  The
                // stray map is drained while the `incoming` lock is held —
                // the batch handler updates it under the same lock — so a
                // concurrent batch either landed in the map before this
                // drain or sees the installed migration and counts directly.
                // Stray counts for *other* migrations are from dead epochs
                // (a target receives one migration at a time) and dropped.
                let mut incoming = self.incoming.lock();
                let early_items = {
                    let mut stray = self.stray_migration_items.lock();
                    let early = stray.remove(&migration_id).unwrap_or(0);
                    stray.clear();
                    early
                };
                *incoming = Some(IncomingMigration {
                    migration_id,
                    ranges: RangeSet::from_ranges(ranges.iter().copied()),
                    mode: PendMode::PendAll,
                    source,
                    items_received: early_items,
                    expected_items: None,
                    started: Instant::now(),
                    last_source_msg: Instant::now(),
                });
                drop(incoming);
                self.incoming_active.store(true, Ordering::SeqCst);
                // Adopt the view the metadata store assigned us at transfer
                // time and take responsibility for the ranges.
                self.serving_view.fetch_max(target_view, Ordering::SeqCst);
                self.owned.write().add(&ranges);
                let _ = conn.send_msg(MigrationMsg::Ack {
                    migration_id,
                    phase: MigrationAckPhase::Prepared,
                });
            }
            MigrationMsg::TakeOwnership {
                migration_id,
                ranges: _,
                target_view,
            } => {
                // The source has stopped serving the ranges; from here on
                // only records that have not arrived yet pend.
                self.serving_view.fetch_max(target_view, Ordering::SeqCst);
                if let Some(incoming) = self.incoming.lock().as_mut() {
                    if incoming.migration_id == migration_id {
                        incoming.mode = PendMode::PendMissing;
                    }
                }
                let _ = conn.send_msg(MigrationMsg::Ack {
                    migration_id,
                    phase: MigrationAckPhase::OwnershipReceived,
                });
            }
            MigrationMsg::PushHotRecords {
                migration_id,
                target_view: _,
                records,
            } => {
                // Only apply the hot set for the migration currently being
                // received — a delayed push from an earlier (cancelled)
                // migration must not resurrect stale values.  Dropping it is
                // always safe: the Migrate phase ships every live in-range
                // record again.
                let applies = self
                    .incoming
                    .lock()
                    .as_ref()
                    .map(|m| m.migration_id == migration_id)
                    .unwrap_or(false);
                if applies {
                    for (key, value) in &records {
                        self.insert_migrated_record(*key, value, session);
                    }
                }
            }
            MigrationMsg::PushRecordBatch {
                migration_id,
                target_view,
                items,
            } => {
                // A batch tagged with a view older than the one we already
                // serve is from a dead migration epoch: drop it.
                if target_view < self.serving_view() {
                    return;
                }
                let count = items.len() as u64;
                for item in items {
                    match item {
                        MigratedItem::Record { key, value } => {
                            self.insert_migrated_record(key, &value, session);
                        }
                        MigratedItem::Indirection {
                            representative_hash,
                            payload,
                        } => {
                            let _ = self.store.insert_record_at_hash(
                                representative_hash,
                                representative_hash,
                                &payload,
                                RecordFlags::INDIRECTION,
                                session,
                            );
                        }
                    }
                }
                {
                    // The stray map is updated while the `incoming` lock is
                    // held (same order as the PrepForTransfer handler), so
                    // this count can never slip between that handler's
                    // stray-drain and its install of the migration.
                    let mut incoming = self.incoming.lock();
                    match incoming.as_mut() {
                        Some(m) if m.migration_id == migration_id => {
                            m.items_received += count;
                        }
                        _ => {
                            // `PrepForTransfer` has not arrived yet; remember
                            // the count so the items stay in the tally.
                            *self
                                .stray_migration_items
                                .lock()
                                .entry(migration_id)
                                .or_insert(0) += count;
                        }
                    }
                }
                self.maybe_finalize_incoming(conn, session);
            }
            MigrationMsg::CompleteMigration {
                migration_id,
                target_view: _,
                total_items,
            } => {
                if let Some(incoming) = self.incoming.lock().as_mut() {
                    if incoming.migration_id == migration_id {
                        incoming.expected_items = Some(total_items);
                    }
                }
                // The Completed ack is sent by `maybe_finalize_incoming`
                // once every announced item has actually arrived — acking
                // here would let the source garbage-collect the recovery
                // dependency while record batches are still in flight.
                self.maybe_finalize_incoming(conn, session);
            }
            MigrationMsg::Ack { .. } => {
                // Control-plane acknowledgement; nothing to do.
            }
            MigrationMsg::CompactionHandoff { key, value } => {
                // Insert unless we already have a version for this key that is
                // not an indirection record (paper §3.3.3).  A local
                // tombstone counts as such a version.
                match self.store.read_record_for(key, session) {
                    Ok(ReadOutcome::Found { record, .. }) if !record.is_indirection() => {}
                    _ => {
                        let _ =
                            self.store
                                .insert_record(key, &value, RecordFlags::empty(), session);
                    }
                }
            }
            MigrationMsg::Heartbeat { migration_id, .. } => {
                let _ = conn.send_msg(MigrationMsg::HeartbeatAck {
                    migration_id,
                    view: self.serving_view(),
                });
            }
            MigrationMsg::HeartbeatAck { .. } => {
                // Proof of life only (already recorded above).
            }
            MigrationMsg::CancelMigration { migration_id, view } => {
                // The id match inside the role-specific cancel paths is the
                // gate: migration ids are never reused, so a replayed cancel
                // from a dead epoch matches no in-flight state and rolls
                // nothing back.  Deliberately no view comparison here — the
                // receiver's single per-server view can advance for an
                // unrelated concurrent migration, which must not mask a
                // legitimate cancel.
                let rolled_back =
                    self.cancel_local_roles(migration_id, "peer cancelled the migration", session);
                if !rolled_back && view > 0 {
                    // No local state: the migration was cancelled before this
                    // server ever heard of it (e.g. mid-sampling, before
                    // `PrepForTransfer` went out).  The authoritative store
                    // has still advanced this server's registered view past
                    // the dead epoch — adopt that fence, or every future
                    // batch stamped with the registered view would be
                    // rejected as stale forever.  `view` carries the view
                    // this server was assigned for the cancelled migration
                    // when the sender knows it (source -> target relays; a
                    // target -> source relay sends 0, the source fences
                    // itself); the post-cancellation registration is one
                    // past it.  fetch_max keeps a replayed cancel from an
                    // old epoch harmless.
                    self.serving_view.fetch_max(view + 1, Ordering::SeqCst);
                }
            }
        }
    }

    /// Restarts the target-side liveness deadline for `migration_id`.
    fn touch_incoming(&self, migration_id: u64) {
        if !self.incoming_active.load(Ordering::Relaxed) {
            return;
        }
        if let Some(m) = self.incoming.lock().as_mut() {
            if m.migration_id == migration_id {
                m.last_source_msg = Instant::now();
            }
        }
    }

    /// Inserts a record that arrived via migration, unless a newer version
    /// already exists locally (a client may have written — or deleted — the
    /// key after ownership transferred; a local tombstone is a newer
    /// version too, and overwriting it would resurrect the key).
    fn insert_migrated_record(&self, key: u64, value: &[u8], session: &FasterSession) {
        match self.store.read_record_for(key, session) {
            Ok(ReadOutcome::Found { record, .. }) if !record.is_indirection() => {
                // Local version is newer; keep it.
            }
            _ => {
                let _ = self
                    .store
                    .insert_record(key, value, RecordFlags::empty(), session);
            }
        }
    }

    /// Finalizes the incoming migration once the source has declared
    /// completion and every announced item has been received: checkpoint,
    /// mark complete at the metadata store, stop pending, and send the
    /// final `Ack { Completed }` on the connection that delivered the
    /// finalizing message (the source watches all of its migration links
    /// for it).
    fn maybe_finalize_incoming(self: &Arc<Self>, conn: &ServerMigConn, session: &FasterSession) {
        let ready = {
            let incoming = self.incoming.lock();
            match incoming.as_ref() {
                Some(m) => m
                    .expected_items
                    .map(|expected| m.items_received >= expected)
                    .unwrap_or(false),
                None => false,
            }
        };
        if !ready {
            return;
        }
        let finished = self.incoming.lock().take();
        self.incoming_active.store(false, Ordering::SeqCst);
        if let Some(m) = finished {
            let cp = take_checkpoint(&self.store, session);
            *self.latest_checkpoint.lock() = Some(cp);
            let _ = self.meta.mark_complete(m.migration_id, self.id());
            self.stray_migration_items.lock().remove(&m.migration_id);
            *self.completed_report.lock() = Some(MigrationReport {
                migration_id: m.migration_id,
                role: MigrationRole::Target,
                bytes_from_memory: 0,
                records_moved: m.items_received,
                indirection_records: 0,
                ssd_bytes_scanned: 0,
                duration_ms: m.started.elapsed().as_millis() as u64,
            });
            let _ = conn.send_msg(MigrationMsg::Ack {
                migration_id: m.migration_id,
                phase: MigrationAckPhase::Completed,
            });
        }
    }
}

/// Builds a hash value that maps to the same bucket and tag as the given
/// source bucket entry, so the target (whose table is the same size) places
/// the indirection record in the equivalent chain.
pub(crate) fn representative_hash(bucket: usize, tag: u16, _table_bits: u32) -> u64 {
    ((tag as u64) << 48) | bucket as u64
}

/// The smallest single range enclosing all migrating ranges (indirection
/// records store one contiguous range; migrations in this reproduction and in
/// the paper's experiments move one contiguous range at a time).
fn enclosing_range(ranges: &[HashRange], default: HashRange) -> HashRange {
    if ranges.is_empty() {
        return default;
    }
    let start = ranges.iter().map(|r| r.start).min().unwrap();
    let end = ranges.iter().map(|r| r.end).max().unwrap();
    HashRange::new(start, end)
}

/// What a local chain walk produced.
#[derive(Debug)]
pub(crate) enum LocalChainFetch {
    /// The key's newest live record.
    Found(RecordOwned),
    /// The chain was fully walked and holds no record for the key at all.
    Missing,
    /// The key's newest record on the chain is a tombstone: the key was
    /// deleted.  Distinct from [`LocalChainFetch::Missing`] so the caller
    /// can cache the deletion locally — without it, a fallback path that
    /// treats "absent from this chain" as "older records elsewhere decide"
    /// would resurrect a pre-delete version.
    Tombstone,
    /// A read failed mid-walk (e.g. a nested indirection named a log this
    /// process cannot read).  The caller must keep the operation pending —
    /// the record may exist where the walk could not reach.
    Unreadable,
}

/// Follows a record chain stored on a *locally readable* shared-tier log
/// (the [`TierService`] answered `Local` for it) looking for `key`.
/// Indirection records on the chain whose range covers the key are followed
/// onto the named log — on an in-process tier every log is readable, so
/// multi-hop chains resolve transitively.
pub(crate) fn fetch_from_shared_chain(
    tier: &dyn TierService,
    source_log: LogId,
    addr: Address,
    key: u64,
) -> LocalChainFetch {
    let hash = shadowfax_faster::KeyHash::of(key).raw();
    // Chain positions still to visit, LIFO: when an indirection is followed
    // onto another log, that continuation is visited *before* the rest of
    // the current chain (it holds the newer versions of covered keys).
    let mut work: Vec<(LogId, Address)> = vec![(source_log, addr)];
    let mut hops = 0;
    while let Some((log, addr)) = work.pop() {
        if !addr.is_valid() {
            continue;
        }
        hops += 1;
        if hops > 1_000_000 {
            return LocalChainFetch::Unreadable;
        }
        let mut header_bytes = [0u8; RECORD_HEADER_BYTES];
        if tier.read_log(log, addr.raw(), &mut header_bytes).is_err() {
            return LocalChainFetch::Unreadable;
        }
        let header = RecordHeader::decode(&header_bytes);
        if header.is_null() {
            continue;
        }
        if header.flags.contains(RecordFlags::INDIRECTION) {
            // The chain continues on another log; follow it if it can cover
            // the key (its payload carries the covered range).
            let mut payload = vec![0u8; header.value_len as usize];
            if tier
                .read_log(log, addr.raw() + RECORD_HEADER_BYTES as u64, &mut payload)
                .is_err()
            {
                return LocalChainFetch::Unreadable;
            }
            work.push((log, header.prev));
            if let Some(ind) = IndirectionRecord::decode_value(&payload) {
                if ind.range.contains(hash) {
                    work.push((ind.source_log, ind.chain_address));
                }
            }
            continue;
        }
        if header.key == key {
            let mut value = vec![0u8; header.value_len as usize];
            if !value.is_empty()
                && tier
                    .read_log(log, addr.raw() + RECORD_HEADER_BYTES as u64, &mut value)
                    .is_err()
            {
                return LocalChainFetch::Unreadable;
            }
            if header.flags.contains(RecordFlags::TOMBSTONE) {
                return LocalChainFetch::Tombstone;
            }
            return LocalChainFetch::Found(RecordOwned { header, value });
        }
        work.push((log, header.prev));
    }
    LocalChainFetch::Missing
}

/// The outcome of one serving-side chain walk page.
#[derive(Debug)]
pub(crate) enum ChainWalk {
    /// The walk progressed: the page's records plus the address to resume
    /// from (0 when the chain is exhausted).
    Page(Vec<TierRecord>, u64),
    /// The tier failed to read at `address` mid-walk.  The chain must be
    /// reported as *unreadable*, never as exhausted — a fetcher that takes
    /// a truncated walk for the full chain would turn a transient tier
    /// error into an acknowledged "not found".
    Unreadable {
        /// The address whose read failed.
        address: u64,
    },
}

/// Walks the chain rooted at `addr` in `source_log` on the local shared
/// tier, collecting records — newest first, one per key (the first
/// occurrence on the chain is the newest version), skipping records marked
/// invalid — until `max_records` or `max_bytes` of value payload is
/// reached (at least one record always makes progress).  Tombstones and
/// indirection records are included *with their flags* so the fetching side
/// can distinguish "deleted" from "never existed".
///
/// This is the serving half of the cross-process chain-fetch protocol: the
/// process hosting the log runs it on behalf of a peer that received an
/// indirection record during migration.
pub(crate) fn read_chain_records(
    tier: &SharedBlobTier,
    source_log: LogId,
    mut addr: Address,
    max_records: usize,
    max_bytes: usize,
) -> ChainWalk {
    let mut records = Vec::new();
    let mut seen_keys: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut bytes = 0usize;
    let mut hops = 0;
    while addr.is_valid() && hops < 1_000_000 {
        if records.len() >= max_records || bytes >= max_bytes {
            return ChainWalk::Page(records, addr.raw());
        }
        let mut header_bytes = [0u8; RECORD_HEADER_BYTES];
        if tier
            .read_log(source_log, addr.raw(), &mut header_bytes)
            .is_err()
        {
            return ChainWalk::Unreadable {
                address: addr.raw(),
            };
        }
        let header = RecordHeader::decode(&header_bytes);
        if header.is_null() {
            // Zeroed space: the chain ran into never-written padding, which
            // only happens at the end of a chain.
            break;
        }
        let skip = header.flags.contains(RecordFlags::INVALID) || !seen_keys.insert(header.key);
        if !skip {
            let mut value = vec![0u8; header.value_len as usize];
            if !value.is_empty()
                && tier
                    .read_log(
                        source_log,
                        addr.raw() + RECORD_HEADER_BYTES as u64,
                        &mut value,
                    )
                    .is_err()
            {
                return ChainWalk::Unreadable {
                    address: addr.raw(),
                };
            }
            bytes += RECORD_HEADER_BYTES + value.len();
            records.push(TierRecord {
                key: header.key,
                flags: header.flags.bits(),
                value,
            });
        }
        addr = header.prev;
        hops += 1;
    }
    ChainWalk::Page(records, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn representative_hash_lands_in_same_bucket_and_tag() {
        let table_bits = 12u32;
        let bucket = 1234usize;
        let tag = 0x2ABCu16 & 0x3FFF;
        let rep = representative_hash(bucket, tag, table_bits);
        let h = KeyHash(rep);
        assert_eq!(h.bucket(table_bits), bucket);
        assert_eq!(h.tag(), tag);
    }

    #[test]
    fn enclosing_range_spans_inputs() {
        let ranges = vec![HashRange::new(100, 200), HashRange::new(400, 500)];
        let e = enclosing_range(&ranges, HashRange::FULL);
        assert_eq!(e, HashRange::new(100, 500));
        assert_eq!(
            enclosing_range(&[], HashRange::new(1, 2)),
            HashRange::new(1, 2)
        );
    }

    #[test]
    fn source_phase_roundtrip() {
        for p in [
            SourcePhase::Sampling,
            SourcePhase::Prepare,
            SourcePhase::Transfer,
            SourcePhase::Migrate,
            SourcePhase::DiskScan,
            SourcePhase::Complete,
        ] {
            assert_eq!(SourcePhase::from_u8(p as u8), p);
        }
    }

    use crate::cluster::{Cluster, ClusterConfig};
    use crate::config::ClientConfig;
    use crate::server::ServerMigConn;
    use shadowfax_net::LivenessConfig;
    use std::time::Duration;

    /// Satellite of the cancellation work: after the target cancels an
    /// incoming migration, a revived source's frames from the dead epoch —
    /// record batches and hot-set pushes tagged with the old target view —
    /// are fenced by view and dropped.
    #[test]
    fn revived_peer_push_after_cancellation_is_fenced_by_view() {
        let cluster = Cluster::start(ClusterConfig::two_server_test());
        let target = cluster.server(crate::ServerId(1)).unwrap();
        let session = target.store().start_session();

        // The metadata-store half of a migration: 25% of server 0 moves to 1.
        let moving = cluster
            .meta()
            .snapshot()
            .server(crate::ServerId(0))
            .unwrap()
            .owned
            .ranges()[0]
            .take_fraction(0.25);
        let (migration_id, _source_view, target_view) = cluster
            .meta()
            .transfer_ownership(crate::ServerId(0), crate::ServerId(1), &[moving])
            .unwrap();

        // A loopback migration connection standing in for the source's
        // control link.
        let listener = cluster.migration_network().listen("unit-source");
        let conn: ServerMigConn =
            Box::new(cluster.migration_network().connect("unit-source").unwrap());
        let source_side = listener.try_accept().unwrap();

        target.handle_migration_msg(
            MigrationMsg::PrepForTransfer {
                migration_id,
                ranges: vec![moving],
                source: crate::ServerId(0),
                target_view,
            },
            &conn,
            &session,
        );
        assert_eq!(target.serving_view(), target_view);
        assert!(target.owned_ranges().contains(moving.start));

        // A batch in the live epoch applies.
        target.handle_migration_msg(
            MigrationMsg::PushRecordBatch {
                migration_id,
                target_view,
                items: vec![MigratedItem::Record {
                    key: 42,
                    value: b"live".to_vec(),
                }],
            },
            &conn,
            &session,
        );
        assert_eq!(session.read(42).unwrap(), Some(b"live".to_vec()));

        // The target declares the source dead and cancels: ownership rolls
        // back and the serving view advances past the dead epoch.
        assert!(target.cancel_incoming_migration(migration_id, "unit test", &session));
        assert_eq!(
            target.serving_view(),
            target_view + 1,
            "cancellation must advance the view to fence the dead epoch"
        );
        assert!(!target.owned_ranges().contains(moving.start));
        let dep = cluster
            .meta()
            .migration_state(migration_id)
            .unwrap()
            .unwrap();
        assert!(dep.cancelled);
        assert!(!target.cancel_incoming_migration(migration_id, "again", &session));

        // The revived source's post-cancellation frames are fenced by view.
        target.handle_migration_msg(
            MigrationMsg::PushRecordBatch {
                migration_id,
                target_view,
                items: vec![MigratedItem::Record {
                    key: 43,
                    value: b"stale".to_vec(),
                }],
            },
            &conn,
            &session,
        );
        assert_eq!(
            session.read(43).unwrap(),
            None,
            "a stale-view record batch must be dropped"
        );
        target.handle_migration_msg(
            MigrationMsg::PushHotRecords {
                migration_id,
                target_view,
                records: vec![(44, b"stale-hot".to_vec())],
            },
            &conn,
            &session,
        );
        assert_eq!(
            session.read(44).unwrap(),
            None,
            "a hot-set push for a cancelled migration must be dropped"
        );

        // The live phase of the protocol acked on the link.
        let acked = source_side.drain();
        assert!(acked.iter().any(|m| matches!(
            m,
            MigrationMsg::Ack {
                phase: MigrationAckPhase::Prepared,
                ..
            }
        )));

        drop(conn);
        cluster.shutdown();
    }

    /// A migration cancelled *before* `PrepForTransfer` ever reached the
    /// target: the authoritative store has advanced the target's registered
    /// view, so the cancel relay must fence the target's serving view even
    /// though it holds no in-flight state — otherwise every future batch
    /// stamped with the registered view is rejected as stale forever (the
    /// wedge the three-process partitioned-layout test first exposed).
    #[test]
    fn cancel_before_prep_fences_the_never_prepped_target() {
        let cluster = Cluster::start(ClusterConfig::two_server_test());
        let target = cluster.server(crate::ServerId(1)).unwrap();
        let session = target.store().start_session();
        assert_eq!(target.serving_view(), 1);

        // The metadata-store half of a migration the target never hears
        // about (cancelled mid-sampling, prep never sent) ...
        let moving = cluster
            .meta()
            .snapshot()
            .server(crate::ServerId(0))
            .unwrap()
            .owned
            .ranges()[0]
            .take_fraction(0.25);
        let (migration_id, _source_view, target_view) = cluster
            .meta()
            .transfer_ownership(crate::ServerId(0), crate::ServerId(1), &[moving])
            .unwrap();
        cluster.meta().cancel_migration(migration_id).unwrap();
        let registered = cluster.meta().view_of(crate::ServerId(1)).unwrap();
        assert_eq!(registered, target_view + 1);
        assert_eq!(target.serving_view(), 1, "no prep was ever delivered");

        let listener = cluster.migration_network().listen("unit-source-2");
        let conn: ServerMigConn = Box::new(
            cluster
                .migration_network()
                .connect("unit-source-2")
                .unwrap(),
        );
        let _source_side = listener.try_accept().unwrap();

        // A cancel for an *unknown* migration carrying no fence (view 0,
        // the target -> source relay form) must not move the view.
        target.handle_migration_msg(
            MigrationMsg::CancelMigration {
                migration_id: migration_id + 7,
                view: 0,
            },
            &conn,
            &session,
        );
        assert_eq!(target.serving_view(), 1);

        // The source's relay carries the target's assigned view: with no
        // local state to roll back, the target adopts the post-cancellation
        // fence and agrees with the authoritative registration.
        target.handle_migration_msg(
            MigrationMsg::CancelMigration {
                migration_id,
                view: target_view,
            },
            &conn,
            &session,
        );
        assert_eq!(target.serving_view(), registered);

        // A replayed cancel from the dead epoch is harmless.
        target.handle_migration_msg(
            MigrationMsg::CancelMigration {
                migration_id,
                view: target_view,
            },
            &conn,
            &session,
        );
        assert_eq!(target.serving_view(), registered);

        drop(conn);
        cluster.shutdown();
    }

    /// The tentpole's liveness-timeout path, in-process: a migration to a
    /// registered-but-unresponsive target (its migration endpoint accepts
    /// connections and then never answers — a hung process) is cancelled by
    /// heartbeat silence, ownership rolls back to the source, and every
    /// previously acknowledged record is still served.
    #[test]
    fn silent_target_triggers_liveness_cancellation_and_rollback() {
        let mut config = ClusterConfig::two_server_test();
        config.server_template.migration.liveness = LivenessConfig {
            heartbeat_interval: Duration::from_millis(10),
            miss_budget: 5,
        };
        let cluster = Cluster::start(config);
        {
            let mut client = cluster.client(ClientConfig::default());
            for key in 0..100u64 {
                assert!(client.upsert(key, format!("v{key}").into_bytes()));
            }
        }

        // A phantom peer: registered at the metadata store, listening on the
        // migration fabric, never answering.
        cluster
            .meta()
            .register_server(crate::ServerId(9), "phantom", 1, RangeSet::empty());
        let _phantom = cluster.migration_network().listen("phantom/m0");

        let migration_id = cluster
            .migrate_fraction(crate::ServerId(0), crate::ServerId(9), 0.5)
            .unwrap();

        // The silence budget expires and the source cancels.
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match cluster.meta().migration_state(migration_id) {
                Ok(Some(dep)) if dep.cancelled => break,
                Ok(Some(_)) => {}
                other => panic!("dependency resolved without cancellation: {other:?}"),
            }
            assert!(
                Instant::now() < deadline,
                "liveness did not cancel the migration to the silent target"
            );
            std::thread::sleep(Duration::from_millis(10));
        }

        // The source re-adopts the post-cancellation map (view + ranges).
        let source = cluster.server(crate::ServerId(0)).unwrap();
        let meta_view = cluster.meta().view_of(crate::ServerId(0)).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while source.serving_view() != meta_view || !source.owned_ranges().contains(0) {
            assert!(
                Instant::now() < deadline,
                "source never re-adopted the post-cancellation ownership map"
            );
            std::thread::sleep(Duration::from_millis(5));
        }

        let stats = cluster.cancellation_stats();
        assert_eq!(stats.migrations_cancelled, 1);
        assert!(
            stats.heartbeats_missed > 0,
            "silence-driven cancellation must count missed heartbeats"
        );

        // Zero acknowledged-write loss: everything reads back, including the
        // half whose ownership had been handed to the phantom.
        let mut client = cluster.client(ClientConfig::default());
        for key in 0..100u64 {
            assert_eq!(
                client.read(key),
                Some(format!("v{key}").into_bytes()),
                "key {key} lost across the cancelled migration"
            );
        }
        assert!(client.upsert(3, b"post-cancel".to_vec()));
        assert_eq!(client.read(3).as_deref(), Some(&b"post-cancel"[..]));
        cluster.shutdown();
    }

    /// A migration start whose target cannot be dialled must roll the
    /// already-recorded ownership transfer back — otherwise the ranges are
    /// stranded on a target that never learned a migration existed.
    #[test]
    fn failed_migration_start_rolls_back_the_ownership_transfer() {
        let cluster = Cluster::start(ClusterConfig::two_server_test());
        // Registered at the metadata store, but nothing listens at its
        // migration endpoint.
        cluster
            .meta()
            .register_server(crate::ServerId(8), "unreachable", 1, RangeSet::empty());
        let err = cluster
            .migrate_fraction(crate::ServerId(0), crate::ServerId(8), 0.5)
            .unwrap_err();
        assert!(err.contains("cancelled"), "unexpected error: {err}");
        assert_eq!(cluster.meta().pending_migrations(), 0);
        let (owner, _) = cluster.meta().owner_of(0).unwrap();
        assert_eq!(owner, crate::ServerId(0), "ownership was stranded");
        assert_eq!(cluster.cancellation_stats().migrations_cancelled, 1);
        // The source is fully clean: a real migration still works.
        cluster
            .migrate_fraction(crate::ServerId(0), crate::ServerId(1), 0.25)
            .unwrap();
        assert!(cluster.wait_for_migrations(Duration::from_secs(120)));
        cluster.shutdown();
    }

    /// Operator-driven cancellation (`shadowfax-cli cancel` bottoms out
    /// here): an in-flight migration rolls back cleanly and the pair can
    /// immediately run a fresh migration to completion.
    #[test]
    fn operator_cancellation_rolls_back_and_allows_a_fresh_migration() {
        let mut config = ClusterConfig::two_server_test();
        // A long sampling phase keeps migration 1 reliably in flight while
        // the operator cancels it.
        config.server_template.migration.sampling_duration = Duration::from_millis(500);
        let cluster = Cluster::start(config);
        {
            let mut client = cluster.client(ClientConfig::default());
            for key in 0..50u64 {
                assert!(client.upsert(key, vec![key as u8; 16]));
            }
        }

        let id = cluster
            .migrate_fraction(crate::ServerId(0), crate::ServerId(1), 0.5)
            .unwrap();
        cluster.cancel_migration(id).expect("cancel in-flight");
        cluster.cancel_migration(id).expect("cancel is idempotent");
        let dep = cluster.meta().migration_state(id).unwrap().unwrap();
        assert!(dep.cancelled);
        assert_eq!(cluster.meta().pending_migrations(), 0);
        assert!(
            cluster.cancel_migration(9999).is_err(),
            "unknown ids are an error"
        );

        // The cancellation left no residue: a fresh migration of the same
        // ranges completes durably.
        let id2 = cluster
            .migrate_fraction(crate::ServerId(0), crate::ServerId(1), 0.25)
            .unwrap();
        assert!(cluster.wait_for_migrations(Duration::from_secs(120)));
        assert!(
            cluster.meta().migration_state(id2).unwrap().is_none(),
            "second migration should complete and be garbage collected"
        );
        assert!(
            cluster.cancel_migration(id2).is_err(),
            "a durably completed migration cannot be cancelled"
        );

        let mut client = cluster.client(ClientConfig::default());
        for key in 0..50u64 {
            assert_eq!(client.read(key), Some(vec![key as u8; 16]));
        }
        cluster.shutdown();
    }
}
