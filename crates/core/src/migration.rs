//! The scale-out / migration protocol (paper §3.3).
//!
//! Migration moves ownership of a set of hash ranges from a *source* server
//! to a *target* server and then moves the records themselves.  It is driven
//! by the source as a sequence of phases — Sampling, Prepare, Transfer,
//! Migrate, Complete — whose transitions happen over asynchronous global cuts
//! (epoch bumps): no dispatch thread is ever stalled; each simply observes the
//! new phase between request batches.
//!
//! * **Sampling** — ownership is remapped at the metadata store (both views
//!   advance, a dependency is recorded), and the source starts copying
//!   accessed records in the migrating ranges to its log tail so a small hot
//!   set can be shipped with the ownership transfer.
//! * **Prepare** — the source tells the target that transfer is imminent
//!   (`PrepForTransfer`); the target starts pending requests for the ranges.
//! * **Transfer** — the source moves into its new view (it stops serving the
//!   ranges) and, once every thread has crossed that cut, sends
//!   `TakeOwnership` followed by `PushHotRecords` with the sampled hot
//!   records; the target starts serving the ranges immediately.
//! * **Migrate** — every source thread walks its own disjoint region of the
//!   hash table, shipping in-memory records and, for chains that extend onto
//!   the SSD, *indirection records* naming the shared-tier location
//!   (`MigrationMode::Shadowfax`), or — for the Rocksteady baseline — a
//!   single thread sequentially scans the on-SSD log afterwards.
//! * **Complete** — the source sends `CompleteMigration`, checkpoints, and
//!   marks its side complete at the metadata store; the target does the same
//!   once every shipped record has been inserted.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use shadowfax_faster::{
    take_checkpoint, Address, FasterSession, KeyHash, ReadOutcome, RecordFlags, RecordOwned,
};
use shadowfax_hlog::{LogScanner, RecordHeader, RECORD_HEADER_BYTES};
use shadowfax_storage::{LogId, SharedBlobTier, TierRecord, TierService};

use crate::config::MigrationMode;
use crate::hash_range::{HashRange, RangeSet};
use crate::indirection::IndirectionRecord;
use crate::messages::{MigratedItem, MigrationAckPhase, MigrationMsg};
use crate::server::{Server, ServerMigConn};
use crate::ServerId;

/// Source-side migration phases (paper §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SourcePhase {
    /// Sampling hot records; still serving the old view.
    Sampling = 0,
    /// Told the target that transfer is imminent.
    Prepare = 1,
    /// Moved into the new view; ownership handed to the target.
    Transfer = 2,
    /// Threads are shipping records in parallel.
    Migrate = 3,
    /// (Rocksteady baseline only) a single thread is scanning the on-SSD log.
    DiskScan = 4,
    /// All records shipped; checkpointing and finishing up.
    Complete = 5,
}

impl SourcePhase {
    fn from_u8(v: u8) -> SourcePhase {
        match v {
            0 => SourcePhase::Sampling,
            1 => SourcePhase::Prepare,
            2 => SourcePhase::Transfer,
            3 => SourcePhase::Migrate,
            4 => SourcePhase::DiskScan,
            _ => SourcePhase::Complete,
        }
    }
}

/// How the target treats requests in the migrating ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PendMode {
    /// Ownership transfer is imminent but has not happened: pend everything
    /// (the target's Prepare phase).
    PendAll,
    /// The target owns the ranges; pend only operations whose record has not
    /// arrived yet (the target's Receive phase).
    PendMissing,
}

/// Target-side state for an incoming migration.
#[derive(Debug)]
pub struct IncomingMigration {
    /// Migration id assigned by the metadata store.
    pub migration_id: u64,
    /// The ranges being received.
    pub ranges: RangeSet,
    /// Current pending rule.
    pub mode: PendMode,
    /// The source server.
    pub source: ServerId,
    /// Items received so far (records + indirection records).
    pub items_received: u64,
    /// Total items the source reported in `CompleteMigration` (`None` until
    /// that message arrives).
    pub expected_items: Option<u64>,
    /// When the first migration message arrived.
    pub started: Instant,
}

/// A report describing a finished migration, kept for benchmarking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationReport {
    /// Migration id.
    pub migration_id: u64,
    /// Role of the reporting server.
    pub role: MigrationRole,
    /// Bytes of record data shipped out of (or into) main memory.
    pub bytes_from_memory: u64,
    /// Full records shipped.
    pub records_moved: u64,
    /// Indirection records shipped.
    pub indirection_records: u64,
    /// Bytes read from the SSD by the Rocksteady scan (0 for Shadowfax).
    pub ssd_bytes_scanned: u64,
    /// Wall-clock duration from start to completion, in milliseconds.
    pub duration_ms: u64,
}

/// Which side of a migration a report describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationRole {
    /// The server that gave up the ranges.
    Source,
    /// The server that received them.
    Target,
}

/// Cursor over the hash-table region one source thread is responsible for.
#[derive(Debug)]
pub(crate) struct RegionCursor {
    next_bucket: usize,
    end_bucket: usize,
}

/// Source-side migration state shared by all dispatch threads.
pub struct OutgoingMigration {
    pub(crate) migration_id: u64,
    pub(crate) target: ServerId,
    pub(crate) ranges: Vec<HashRange>,
    pub(crate) new_view: u64,
    /// The view the metadata store assigned the target; every source→target
    /// message is tagged with it.
    pub(crate) target_view: u64,
    pub(crate) mode: MigrationMode,
    pub(crate) phase: AtomicU8,
    pub(crate) started: Instant,
    /// Set once the epoch action advancing out of Sampling has been scheduled.
    pub(crate) prepare_scheduled: AtomicBool,
    pub(crate) prep_sent: AtomicBool,
    pub(crate) ownership_sent: AtomicBool,
    pub(crate) complete_sent: AtomicBool,
    /// Per-thread loop generations recorded when the serving view flipped;
    /// the hot set is read only after every thread has advanced past these.
    pub(crate) view_flip_generations: Mutex<Option<Vec<u64>>>,
    /// Per-thread hash-table regions.
    pub(crate) regions: Vec<Mutex<RegionCursor>>,
    pub(crate) regions_done: AtomicUsize,
    /// Control connection to the target (thread 0 of its migration fabric).
    pub(crate) control: Mutex<ServerMigConn>,
    /// Rocksteady disk-scan cursor.
    pub(crate) disk_cursor: Mutex<Address>,
    // Accounting (Figure 13).
    pub(crate) bytes_from_memory: AtomicU64,
    pub(crate) records_sent: AtomicU64,
    pub(crate) indirections_sent: AtomicU64,
    pub(crate) ssd_bytes_scanned: AtomicU64,
    pub(crate) total_items: AtomicU64,
}

impl std::fmt::Debug for OutgoingMigration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OutgoingMigration")
            .field("id", &self.migration_id)
            .field("target", &self.target)
            .field("phase", &self.phase())
            .finish()
    }
}

impl OutgoingMigration {
    /// The current source phase.
    pub fn phase(&self) -> SourcePhase {
        SourcePhase::from_u8(self.phase.load(Ordering::SeqCst))
    }

    fn set_phase(&self, p: SourcePhase) {
        self.phase.store(p as u8, Ordering::SeqCst);
    }
}

/// A completed outgoing migration still waiting for the target's final
/// acknowledgement (see [`Server::drive_finishing`]).
pub(crate) struct FinishingMigration {
    pub(crate) migration_id: u64,
    pub(crate) target: ServerId,
    /// Kept alive for its control connection.
    pub(crate) outgoing: Arc<OutgoingMigration>,
}

/// The result of pulling one step from a [`MigrationBatchIter`].
#[derive(Debug)]
pub enum BatchPull {
    /// A batch of records / indirection records ready to ship.
    Batch(Vec<MigratedItem>),
    /// A bounded slice of the region was scanned but a full batch has not
    /// accumulated yet; pull again.
    Pending,
    /// The thread's region is exhausted and every batch has been returned.
    Exhausted,
}

/// A pull-based iterator over the record batches one dispatch thread
/// contributes to the Migrate phase.
///
/// Each [`MigrationBatchIter::next_batch`] call scans at most
/// `buckets_per_iteration` hash-table buckets of the thread's region (so
/// migration work stays interleaved with request processing) and hands back
/// a batch once `records_per_batch` items have accumulated or the region is
/// done.  The dispatch loop pulls batches from this iterator and ships each
/// one over the thread's migration link — the transport underneath (the
/// in-process fabric or a TCP migration connection) never influences how
/// batches are produced.
pub struct MigrationBatchIter<'a> {
    server: &'a Arc<Server>,
    outgoing: &'a Arc<OutgoingMigration>,
    state: &'a mut SourceThreadState,
    session: &'a FasterSession,
}

impl<'a> MigrationBatchIter<'a> {
    pub(crate) fn new(
        server: &'a Arc<Server>,
        outgoing: &'a Arc<OutgoingMigration>,
        state: &'a mut SourceThreadState,
        session: &'a FasterSession,
    ) -> Self {
        MigrationBatchIter {
            server,
            outgoing,
            state,
            session,
        }
    }

    /// Pulls the next step: a full (or final partial) batch, a bounded
    /// amount of scanning progress, or region exhaustion.
    pub fn next_batch(&mut self) -> BatchPull {
        let thread_id = self.state.thread_id;
        let (start, end) = {
            let mut cursor = self.outgoing.regions[thread_id].lock();
            if cursor.next_bucket >= cursor.end_bucket {
                (cursor.end_bucket, cursor.end_bucket)
            } else {
                let start = cursor.next_bucket;
                let end = (start + self.server.config.migration.buckets_per_iteration)
                    .min(cursor.end_bucket);
                cursor.next_bucket = end;
                (start, end)
            }
        };
        if start < end {
            self.server
                .collect_region(self.outgoing, self.state, start..end, self.session);
        }
        let finished = {
            let cursor = self.outgoing.regions[thread_id].lock();
            cursor.next_bucket >= cursor.end_bucket
        };
        if self.state.batch.len() >= self.server.config.migration.records_per_batch
            || (finished && !self.state.batch.is_empty())
        {
            self.state.batch_bytes = 0;
            return BatchPull::Batch(std::mem::take(&mut self.state.batch));
        }
        if finished {
            BatchPull::Exhausted
        } else {
            BatchPull::Pending
        }
    }
}

/// Per-thread state used while contributing to an outgoing migration.
pub(crate) struct SourceThreadState {
    pub(crate) thread_id: usize,
    /// Lazily created connection to the target for record batches.
    pub(crate) records_conn: Option<ServerMigConn>,
    pub(crate) region_done_reported: bool,
    pub(crate) batch: Vec<MigratedItem>,
    pub(crate) batch_bytes: usize,
    /// The migration id the per-thread state belongs to (reset across
    /// migrations).
    pub(crate) migration_id: Option<u64>,
}

impl SourceThreadState {
    pub(crate) fn new(thread_id: usize) -> Self {
        SourceThreadState {
            thread_id,
            records_conn: None,
            region_done_reported: false,
            batch: Vec::new(),
            batch_bytes: 0,
            migration_id: None,
        }
    }

    fn reset_for(&mut self, migration_id: u64) {
        if self.migration_id != Some(migration_id) {
            self.migration_id = Some(migration_id);
            self.records_conn = None;
            self.region_done_reported = false;
            self.batch.clear();
            self.batch_bytes = 0;
        }
    }
}

impl Server {
    /// Starts migrating `ranges` from this server to `target` (the paper's
    /// `Migrate()` RPC, §3.3).  Returns the migration id.
    ///
    /// # Errors
    ///
    /// Fails if a migration is already in flight at this server, if the
    /// metadata store rejects the ownership transfer, or if the target cannot
    /// be reached.
    pub fn start_migration(
        self: &Arc<Self>,
        ranges: Vec<HashRange>,
        target: ServerId,
    ) -> Result<u64, String> {
        if self.outgoing.read().is_some() {
            return Err("a migration is already in progress at this server".into());
        }
        let snapshot = self.meta.snapshot();
        let target_meta = snapshot
            .server(target)
            .ok_or_else(|| format!("unknown target server {target:?}"))?
            .clone();
        // Step 1 (Sampling phase entry): atomically remap ownership, advance
        // both views, and record the recovery dependency.
        let (migration_id, new_source_view, new_target_view) = self
            .meta
            .transfer_ownership(self.id(), target, &ranges)
            .map_err(|e| e.to_string())?;
        // Step 2: start sampling hot records in the migrating ranges.
        if self.config.migration.ship_sampled_records {
            let filter_ranges = ranges.clone();
            self.store.begin_sampling(Box::new(move |hash| {
                filter_ranges.iter().any(|r| r.contains(hash))
            }));
        }
        // Control connection to the target's thread-0 migration endpoint.
        let control = self
            .connect_migration(&target_meta.address, target, 0)
            .ok_or_else(|| {
                format!(
                    "cannot connect to target {target} at {}/m0",
                    target_meta.address
                )
            })?;

        let buckets = self.store.index().num_buckets();
        let threads = self.config.threads;
        let per = buckets.div_ceil(threads);
        let regions = (0..threads)
            .map(|t| {
                Mutex::new(RegionCursor {
                    next_bucket: t * per,
                    end_bucket: ((t + 1) * per).min(buckets),
                })
            })
            .collect();

        let outgoing = Arc::new(OutgoingMigration {
            migration_id,
            target,
            ranges,
            new_view: new_source_view,
            target_view: new_target_view,
            mode: self.config.migration.mode,
            phase: AtomicU8::new(SourcePhase::Sampling as u8),
            started: Instant::now(),
            prepare_scheduled: AtomicBool::new(false),
            prep_sent: AtomicBool::new(false),
            ownership_sent: AtomicBool::new(false),
            complete_sent: AtomicBool::new(false),
            view_flip_generations: Mutex::new(None),
            regions,
            regions_done: AtomicUsize::new(0),
            control: Mutex::new(control),
            disk_cursor: Mutex::new(self.store.log().begin_address()),
            bytes_from_memory: AtomicU64::new(0),
            records_sent: AtomicU64::new(0),
            indirections_sent: AtomicU64::new(0),
            ssd_bytes_scanned: AtomicU64::new(0),
            total_items: AtomicU64::new(0),
        });
        *self.outgoing.write() = Some(outgoing);
        Ok(migration_id)
    }

    /// The last completed migration's report, if any (source side keeps it in
    /// the completed-report slot of the metadata-free server state).
    pub fn last_migration_report(&self) -> Option<MigrationReport> {
        self.completed_report.lock().clone()
    }

    /// Contributes this thread's share of the outgoing migration, if one is
    /// in flight.  Returns `true` if any work was done.
    pub(crate) fn drive_outgoing(
        self: &Arc<Self>,
        state: &mut SourceThreadState,
        session: &FasterSession,
    ) -> bool {
        let Some(outgoing) = self.outgoing.read().clone() else {
            return false;
        };
        state.reset_for(outgoing.migration_id);
        let is_driver = state.thread_id == 0;
        // Drain acknowledgements on the control connection so it never backs
        // up; the protocol is fully asynchronous and nothing blocks on them.
        if is_driver {
            let control = outgoing.control.lock();
            while let Ok(Some(_)) = control.try_recv_msg() {}
        }
        match outgoing.phase() {
            SourcePhase::Sampling => {
                if is_driver
                    && outgoing.started.elapsed() >= self.config.migration.sampling_duration
                    && !outgoing.prepare_scheduled.swap(true, Ordering::SeqCst)
                {
                    // Advance to Prepare over a global cut: the phase flips
                    // only after every dispatch thread has refreshed, i.e.
                    // completed its part of the Sampling phase.
                    let out = Arc::clone(&outgoing);
                    self.store.epoch().bump_with_action(move || {
                        out.set_phase(SourcePhase::Prepare);
                    });
                    return true;
                }
                false
            }
            SourcePhase::Prepare => {
                if is_driver && !outgoing.prep_sent.swap(true, Ordering::SeqCst) {
                    let target_view = outgoing.target_view;
                    let _ = outgoing
                        .control
                        .lock()
                        .send_msg(MigrationMsg::PrepForTransfer {
                            migration_id: outgoing.migration_id,
                            ranges: outgoing.ranges.clone(),
                            source: self.id(),
                            target_view,
                        });
                    // Transfer begins once every thread has completed Prepare.
                    let server = Arc::clone(self);
                    let out = Arc::clone(&outgoing);
                    self.store.epoch().bump_with_action(move || {
                        // Transfer-phase entry: move into the new view.  From
                        // this instant batches tagged with the old view are
                        // rejected, which pushes the cut out to clients over
                        // their sessions (paper §3.2.1).
                        server.serving_view.store(out.new_view, Ordering::SeqCst);
                        server.owned.write().remove(&out.ranges);
                        // Record each thread's position in its operation
                        // sequence; the hot set is shipped only after every
                        // thread has moved past it (the paper's global cut is
                        // taken at operation boundaries, §2.1/§3.2.1).
                        let generations = server
                            .loop_generation
                            .iter()
                            .map(|g| g.load(Ordering::SeqCst))
                            .collect();
                        *out.view_flip_generations.lock() = Some(generations);
                        out.set_phase(SourcePhase::Transfer);
                    });
                    return true;
                }
                false
            }
            SourcePhase::Transfer => {
                if !is_driver {
                    return false;
                }
                // Wait until every dispatch thread has crossed an operation
                // boundary after the view flip, so no batch accepted in the
                // old view is still applying updates.
                let cut_passed = {
                    let recorded = outgoing.view_flip_generations.lock();
                    match recorded.as_ref() {
                        Some(at_flip) => at_flip
                            .iter()
                            .enumerate()
                            .all(|(t, g)| self.loop_generation[t].load(Ordering::SeqCst) > *g),
                        None => false,
                    }
                };
                if !cut_passed {
                    return false;
                }
                if !outgoing.ownership_sent.swap(true, Ordering::SeqCst) {
                    // Read the hot set's current values now — after the cut —
                    // so every update acknowledged by the source is included.
                    let sampled = if self.config.migration.ship_sampled_records {
                        let keys = self.store.end_sampling();
                        let mut records = Vec::with_capacity(keys.len());
                        for key in keys {
                            if let Ok(ReadOutcome::Found { record, .. }) =
                                self.store.read_record_for(key, session)
                            {
                                if !record.is_indirection() && !record.is_tombstone() {
                                    records.push((key, record.value().to_vec()));
                                }
                            }
                        }
                        records
                    } else {
                        let _ = self.store.end_sampling();
                        Vec::new()
                    };
                    // The control link is ordered, so the target always sees
                    // the ownership flip before the hot set that follows it.
                    let control = outgoing.control.lock();
                    let _ = control.send_msg(MigrationMsg::TakeOwnership {
                        migration_id: outgoing.migration_id,
                        ranges: outgoing.ranges.clone(),
                        target_view: outgoing.target_view,
                    });
                    let _ = control.send_msg(MigrationMsg::PushHotRecords {
                        migration_id: outgoing.migration_id,
                        target_view: outgoing.target_view,
                        records: sampled,
                    });
                    drop(control);
                    outgoing.set_phase(SourcePhase::Migrate);
                    return true;
                }
                false
            }
            SourcePhase::Migrate => self.drive_migrate_phase(&outgoing, state, session),
            SourcePhase::DiskScan => {
                if is_driver {
                    self.drive_disk_scan(&outgoing, state, session)
                } else {
                    false
                }
            }
            SourcePhase::Complete => {
                if is_driver && !outgoing.complete_sent.swap(true, Ordering::SeqCst) {
                    let _ = outgoing
                        .control
                        .lock()
                        .send_msg(MigrationMsg::CompleteMigration {
                            migration_id: outgoing.migration_id,
                            target_view: outgoing.target_view,
                            total_items: outgoing.total_items.load(Ordering::SeqCst),
                        });
                    // Checkpoint so the post-migration state is independently
                    // recoverable, then mark our side complete (paper §3.3.1).
                    let cp = take_checkpoint(&self.store, session);
                    *self.latest_checkpoint.lock() = Some(cp);
                    let _ = self.meta.mark_complete(outgoing.migration_id, self.id());
                    let report = MigrationReport {
                        migration_id: outgoing.migration_id,
                        role: MigrationRole::Source,
                        bytes_from_memory: outgoing.bytes_from_memory.load(Ordering::Relaxed),
                        records_moved: outgoing.records_sent.load(Ordering::Relaxed),
                        indirection_records: outgoing.indirections_sent.load(Ordering::Relaxed),
                        ssd_bytes_scanned: outgoing.ssd_bytes_scanned.load(Ordering::Relaxed),
                        duration_ms: outgoing.started.elapsed().as_millis() as u64,
                    };
                    *self.completed_report.lock() = Some(report);
                    // Keep the control link alive until the target's final
                    // acknowledgement arrives: when the target runs in
                    // another OS process it cannot reach this process's
                    // metadata store, so the source marks the target side
                    // complete on its behalf (idempotent in-process, where
                    // the target already marked itself directly).
                    *self.finishing.lock() = Some(FinishingMigration {
                        migration_id: outgoing.migration_id,
                        target: outgoing.target,
                        outgoing: Arc::clone(&outgoing),
                    });
                    self.finishing_active.store(true, Ordering::SeqCst);
                    *self.outgoing.write() = None;
                    return true;
                }
                false
            }
        }
    }

    /// Collects the target's final `Ack { Completed }` for a migration whose
    /// source side already finished, then marks the target side complete at
    /// this process's metadata store.  Returns `true` if progress was made.
    pub(crate) fn drive_finishing(&self) -> bool {
        // Fast path: no migration is waiting on its final ack.
        if !self.finishing_active.load(Ordering::Relaxed) {
            return false;
        }
        let mut slot = self.finishing.lock();
        let Some(fin) = slot.as_ref() else {
            return false;
        };
        let mut acked = false;
        {
            let control = fin.outgoing.control.lock();
            while let Ok(Some(msg)) = control.try_recv_msg() {
                if matches!(
                    msg,
                    MigrationMsg::Ack {
                        migration_id,
                        phase: MigrationAckPhase::Completed,
                    } if migration_id == fin.migration_id
                ) {
                    acked = true;
                }
            }
            if !acked && !control.is_open() {
                // The target is gone; leave the dependency pending so the
                // stall is observable, but stop polling a dead link.
                drop(control);
                *slot = None;
                self.finishing_active.store(false, Ordering::SeqCst);
                return false;
            }
        }
        if acked {
            let _ = self.meta.mark_complete(fin.migration_id, fin.target);
            *slot = None;
            self.finishing_active.store(false, Ordering::SeqCst);
            return true;
        }
        false
    }

    /// The per-thread half of [`Server::drive_finishing`]: the target's
    /// final ack travels on whichever link delivered the finalizing message,
    /// which can be this thread's records link rather than the control link.
    pub(crate) fn drive_finishing_thread(&self, state: &SourceThreadState) -> bool {
        // Fast paths: nothing to wait for, or this thread has no link that
        // could carry the ack.  The atomic keeps the idle serving loop off
        // the shared mutex.
        if !self.finishing_active.load(Ordering::Relaxed) || state.records_conn.is_none() {
            return false;
        }
        let (id, target) = match self.finishing.lock().as_ref() {
            Some(fin) => (fin.migration_id, fin.target),
            None => return false,
        };
        if state.migration_id != Some(id) {
            return false;
        }
        let Some(conn) = &state.records_conn else {
            return false;
        };
        let mut acked = false;
        while let Ok(Some(msg)) = conn.try_recv_msg() {
            if matches!(
                msg,
                MigrationMsg::Ack {
                    migration_id,
                    phase: MigrationAckPhase::Completed,
                } if migration_id == id
            ) {
                acked = true;
            }
        }
        if acked {
            let _ = self.meta.mark_complete(id, target);
            *self.finishing.lock() = None;
            self.finishing_active.store(false, Ordering::SeqCst);
            return true;
        }
        false
    }

    /// One iteration of this thread's share of the Migrate phase: pull the
    /// next record batch from the thread's [`MigrationBatchIter`] and ship
    /// it over the thread's migration link.
    fn drive_migrate_phase(
        self: &Arc<Self>,
        outgoing: &Arc<OutgoingMigration>,
        state: &mut SourceThreadState,
        session: &FasterSession,
    ) -> bool {
        let thread_id = state.thread_id;
        if state.region_done_reported {
            // This thread is finished; thread 0 watches for global completion.
            if thread_id == 0 && outgoing.regions_done.load(Ordering::SeqCst) >= self.config.threads
            {
                let next = match outgoing.mode {
                    MigrationMode::Shadowfax => SourcePhase::Complete,
                    MigrationMode::Rocksteady => SourcePhase::DiskScan,
                };
                outgoing.set_phase(next);
                return true;
            }
            return false;
        }

        // Ensure this thread has its own migration connection to the target.
        if state.records_conn.is_none() {
            let snapshot = self.meta.snapshot();
            let Some(target_meta) = snapshot.server(outgoing.target).cloned() else {
                return false;
            };
            state.records_conn = self.connect_migration(
                &target_meta.address,
                outgoing.target,
                thread_id % target_meta.threads.max(1),
            );
        }

        match MigrationBatchIter::new(self, outgoing, state, session).next_batch() {
            BatchPull::Batch(items) => {
                self.ship_migration_items(outgoing, state, items);
                true
            }
            BatchPull::Pending => true,
            BatchPull::Exhausted => {
                state.region_done_reported = true;
                outgoing.regions_done.fetch_add(1, Ordering::SeqCst);
                true
            }
        }
    }

    /// Collects records for the migrating ranges from main-table buckets
    /// `region` and appends them to this thread's outgoing batch.
    fn collect_region(
        self: &Arc<Self>,
        outgoing: &Arc<OutgoingMigration>,
        state: &mut SourceThreadState,
        region: std::ops::Range<usize>,
        session: &FasterSession,
    ) {
        let log = self.store.log();
        let head = log.head_address();
        let guard = session.thread().protect();
        for snap in self.store.index().scan_region(region) {
            let mut addr = snap.entry.address;
            let mut seen_keys: Vec<u64> = Vec::new();
            while addr.is_valid() && addr >= log.begin_address() {
                if addr < head {
                    // The rest of this chain lives on the SSD / shared tier.
                    match outgoing.mode {
                        MigrationMode::Shadowfax => {
                            let representative = representative_hash(
                                snap.bucket,
                                snap.entry.tag,
                                self.store.index().table_bits(),
                            );
                            let ind = IndirectionRecord {
                                range: enclosing_range(&outgoing.ranges, HashRange::FULL),
                                chain_address: addr,
                                source_log: self.log_id(),
                                representative_hash: representative,
                            };
                            let item = MigratedItem::Indirection {
                                representative_hash: representative,
                                payload: ind.encode_value(),
                            };
                            outgoing.indirections_sent.fetch_add(1, Ordering::Relaxed);
                            self.push_migration_item(outgoing, state, item);
                        }
                        MigrationMode::Rocksteady => {
                            // The disk-scan phase will pick these up.
                        }
                    }
                    break;
                }
                let Ok(record) = log.read_record(addr, &guard) else {
                    break;
                };
                let key = record.key();
                let hash = KeyHash::of(key).raw();
                let in_range = outgoing.ranges.iter().any(|r| r.contains(hash));
                let is_dup = seen_keys.contains(&key);
                if in_range
                    && !is_dup
                    && !record.is_tombstone()
                    && !record.header.flags.contains(RecordFlags::INDIRECTION)
                {
                    let item = MigratedItem::Record {
                        key,
                        value: record.value().to_vec(),
                    };
                    outgoing.records_sent.fetch_add(1, Ordering::Relaxed);
                    self.push_migration_item(outgoing, state, item);
                }
                if in_range {
                    seen_keys.push(key);
                }
                addr = record.header.prev;
            }
        }
        drop(guard);
    }

    fn push_migration_item(
        &self,
        outgoing: &Arc<OutgoingMigration>,
        state: &mut SourceThreadState,
        item: MigratedItem,
    ) {
        let bytes = item.wire_size();
        outgoing
            .bytes_from_memory
            .fetch_add(bytes as u64, Ordering::Relaxed);
        outgoing.total_items.fetch_add(1, Ordering::Relaxed);
        state.batch_bytes += bytes;
        state.batch.push(item);
    }

    /// Ships one pulled batch on this thread's migration link, falling back
    /// to the control link if the thread's link is missing or fails.  If the
    /// target is unreachable on both, the batch is put back for retry:
    /// every item in it is already counted in `total_items`, so dropping it
    /// would leave the target waiting forever.  In the rare case a transport
    /// consumes a message it could not deliver, the count is rolled back
    /// instead, keeping the target's expected total honest.
    fn ship_migration_items(
        &self,
        outgoing: &Arc<OutgoingMigration>,
        state: &mut SourceThreadState,
        items: Vec<MigratedItem>,
    ) {
        if items.is_empty() {
            return;
        }
        let count = items.len() as u64;
        let mut msg = MigrationMsg::PushRecordBatch {
            migration_id: outgoing.migration_id,
            target_view: outgoing.target_view,
            items,
        };
        if let Some(conn) = &state.records_conn {
            match conn.send_msg(msg) {
                Ok(()) => {
                    // Drain acknowledgements/noise so the channel never
                    // backs up.
                    while let Ok(Some(_)) = conn.try_recv_msg() {}
                    return;
                }
                Err(err) => {
                    // The link failed; drop it so the next iteration redials.
                    state.records_conn = None;
                    match err.msg {
                        Some(recovered) => msg = recovered,
                        None => {
                            outgoing.total_items.fetch_sub(count, Ordering::SeqCst);
                            return;
                        }
                    }
                }
            }
        }
        match outgoing.control.lock().send_msg(msg) {
            Ok(()) => {}
            Err(err) => match err.msg {
                Some(MigrationMsg::PushRecordBatch { mut items, .. }) => {
                    items.append(&mut state.batch);
                    state.batch = items;
                }
                _ => {
                    outgoing.total_items.fetch_sub(count, Ordering::SeqCst);
                }
            },
        }
    }

    /// One bounded slice of the Rocksteady baseline's sequential SSD scan.
    ///
    /// The cursor always resumes from the scanner's own position (a record or
    /// page boundary), never from an arbitrary byte offset, so no record is
    /// ever skipped at a chunk boundary.
    fn drive_disk_scan(
        self: &Arc<Self>,
        outgoing: &Arc<OutgoingMigration>,
        state: &mut SourceThreadState,
        session: &FasterSession,
    ) -> bool {
        let log = self.store.log();
        let head = log.head_address();
        let start = *outgoing.disk_cursor.lock();
        if start >= head {
            // Retry any batch a failed send put back before declaring the
            // scan complete — the items are counted in `total_items`, so
            // completing with them unshipped would wedge the target.
            let items = std::mem::take(&mut state.batch);
            state.batch_bytes = 0;
            self.ship_migration_items(outgoing, state, items);
            if state.batch.is_empty() {
                outgoing.set_phase(SourcePhase::Complete);
            }
            return true;
        }
        let budget = self.config.migration.disk_scan_bytes_per_iteration as u64;
        let mut records: Vec<(Address, RecordOwned)> = Vec::new();
        let mut scanner = LogScanner::new(log, start, head, session.thread());
        let mut exhausted = true;
        for (addr, record) in scanner.by_ref() {
            records.push((addr, record));
            if addr.raw().saturating_sub(start.raw()) >= budget {
                exhausted = false;
                break;
            }
        }
        let new_cursor = if exhausted { head } else { scanner.position() };
        for (addr, record) in records {
            let hash = KeyHash::of(record.key()).raw();
            if !outgoing.ranges.iter().any(|r| r.contains(hash)) || record.is_tombstone() {
                continue;
            }
            // Only ship records that are still the live (newest) version.
            let live = matches!(
                self.store.read_record_for(record.key(), session),
                Ok(ReadOutcome::Found { address, .. }) if address == addr
            );
            if !live {
                continue;
            }
            let item = MigratedItem::Record {
                key: record.key(),
                value: record.value().to_vec(),
            };
            outgoing.records_sent.fetch_add(1, Ordering::Relaxed);
            outgoing.total_items.fetch_add(1, Ordering::Relaxed);
            state.batch.push(item);
        }
        // The scan read this whole slice of the stable region sequentially.
        outgoing
            .ssd_bytes_scanned
            .fetch_add(new_cursor.raw() - start.raw(), Ordering::Relaxed);
        *outgoing.disk_cursor.lock() = new_cursor;
        let items = std::mem::take(&mut state.batch);
        state.batch_bytes = 0;
        self.ship_migration_items(outgoing, state, items);
        if new_cursor >= head && state.batch.is_empty() {
            outgoing.set_phase(SourcePhase::Complete);
        }
        true
    }

    // ------------------------------------------------------------------
    // Target side
    // ------------------------------------------------------------------

    /// Handles one migration message arriving from a peer server.
    pub(crate) fn handle_migration_msg(
        self: &Arc<Self>,
        msg: MigrationMsg,
        conn: &ServerMigConn,
        session: &FasterSession,
    ) {
        match msg {
            MigrationMsg::PrepForTransfer {
                migration_id,
                ranges,
                source,
                target_view,
            } => {
                // A prepare tagged with a view older than the one we already
                // serve is from a dead migration epoch: ignore it.
                if target_view < self.serving_view() {
                    return;
                }
                // Record batches can beat this message over TCP (they travel
                // on different connections); fold any strays back in.  The
                // stray map is drained while the `incoming` lock is held —
                // the batch handler updates it under the same lock — so a
                // concurrent batch either landed in the map before this
                // drain or sees the installed migration and counts directly.
                // Stray counts for *other* migrations are from dead epochs
                // (a target receives one migration at a time) and dropped.
                let mut incoming = self.incoming.lock();
                let early_items = {
                    let mut stray = self.stray_migration_items.lock();
                    let early = stray.remove(&migration_id).unwrap_or(0);
                    stray.clear();
                    early
                };
                *incoming = Some(IncomingMigration {
                    migration_id,
                    ranges: RangeSet::from_ranges(ranges.iter().copied()),
                    mode: PendMode::PendAll,
                    source,
                    items_received: early_items,
                    expected_items: None,
                    started: Instant::now(),
                });
                drop(incoming);
                self.incoming_active.store(true, Ordering::SeqCst);
                // Adopt the view the metadata store assigned us at transfer
                // time and take responsibility for the ranges.
                self.serving_view.fetch_max(target_view, Ordering::SeqCst);
                self.owned.write().add(&ranges);
                let _ = conn.send_msg(MigrationMsg::Ack {
                    migration_id,
                    phase: MigrationAckPhase::Prepared,
                });
            }
            MigrationMsg::TakeOwnership {
                migration_id,
                ranges: _,
                target_view,
            } => {
                // The source has stopped serving the ranges; from here on
                // only records that have not arrived yet pend.
                self.serving_view.fetch_max(target_view, Ordering::SeqCst);
                if let Some(incoming) = self.incoming.lock().as_mut() {
                    if incoming.migration_id == migration_id {
                        incoming.mode = PendMode::PendMissing;
                    }
                }
                let _ = conn.send_msg(MigrationMsg::Ack {
                    migration_id,
                    phase: MigrationAckPhase::OwnershipReceived,
                });
            }
            MigrationMsg::PushHotRecords {
                migration_id,
                target_view: _,
                records,
            } => {
                // Only apply the hot set for the migration currently being
                // received — a delayed push from an earlier (cancelled)
                // migration must not resurrect stale values.  Dropping it is
                // always safe: the Migrate phase ships every live in-range
                // record again.
                let applies = self
                    .incoming
                    .lock()
                    .as_ref()
                    .map(|m| m.migration_id == migration_id)
                    .unwrap_or(false);
                if applies {
                    for (key, value) in &records {
                        self.insert_migrated_record(*key, value, session);
                    }
                }
            }
            MigrationMsg::PushRecordBatch {
                migration_id,
                target_view,
                items,
            } => {
                // A batch tagged with a view older than the one we already
                // serve is from a dead migration epoch: drop it.
                if target_view < self.serving_view() {
                    return;
                }
                let count = items.len() as u64;
                for item in items {
                    match item {
                        MigratedItem::Record { key, value } => {
                            self.insert_migrated_record(key, &value, session);
                        }
                        MigratedItem::Indirection {
                            representative_hash,
                            payload,
                        } => {
                            let _ = self.store.insert_record_at_hash(
                                representative_hash,
                                representative_hash,
                                &payload,
                                RecordFlags::INDIRECTION,
                                session,
                            );
                        }
                    }
                }
                {
                    // The stray map is updated while the `incoming` lock is
                    // held (same order as the PrepForTransfer handler), so
                    // this count can never slip between that handler's
                    // stray-drain and its install of the migration.
                    let mut incoming = self.incoming.lock();
                    match incoming.as_mut() {
                        Some(m) if m.migration_id == migration_id => {
                            m.items_received += count;
                        }
                        _ => {
                            // `PrepForTransfer` has not arrived yet; remember
                            // the count so the items stay in the tally.
                            *self
                                .stray_migration_items
                                .lock()
                                .entry(migration_id)
                                .or_insert(0) += count;
                        }
                    }
                }
                self.maybe_finalize_incoming(conn, session);
            }
            MigrationMsg::CompleteMigration {
                migration_id,
                target_view: _,
                total_items,
            } => {
                if let Some(incoming) = self.incoming.lock().as_mut() {
                    if incoming.migration_id == migration_id {
                        incoming.expected_items = Some(total_items);
                    }
                }
                // The Completed ack is sent by `maybe_finalize_incoming`
                // once every announced item has actually arrived — acking
                // here would let the source garbage-collect the recovery
                // dependency while record batches are still in flight.
                self.maybe_finalize_incoming(conn, session);
            }
            MigrationMsg::Ack { .. } => {
                // Control-plane acknowledgement; nothing to do.
            }
            MigrationMsg::CompactionHandoff { key, value } => {
                // Insert unless we already have a version for this key that is
                // not an indirection record (paper §3.3.3).
                match session.read_outcome(key) {
                    Ok(ReadOutcome::Found { record, .. }) if !record.is_indirection() => {}
                    _ => {
                        let _ =
                            self.store
                                .insert_record(key, &value, RecordFlags::empty(), session);
                    }
                }
            }
        }
    }

    /// Inserts a record that arrived via migration, unless a newer version
    /// already exists locally (a client may have written the key after
    /// ownership transferred).
    fn insert_migrated_record(&self, key: u64, value: &[u8], session: &FasterSession) {
        match session.read_outcome(key) {
            Ok(ReadOutcome::Found { record, .. }) if !record.is_indirection() => {
                // Local version is newer; keep it.
            }
            _ => {
                let _ = self
                    .store
                    .insert_record(key, value, RecordFlags::empty(), session);
            }
        }
    }

    /// Finalizes the incoming migration once the source has declared
    /// completion and every announced item has been received: checkpoint,
    /// mark complete at the metadata store, stop pending, and send the
    /// final `Ack { Completed }` on the connection that delivered the
    /// finalizing message (the source watches all of its migration links
    /// for it).
    fn maybe_finalize_incoming(self: &Arc<Self>, conn: &ServerMigConn, session: &FasterSession) {
        let ready = {
            let incoming = self.incoming.lock();
            match incoming.as_ref() {
                Some(m) => m
                    .expected_items
                    .map(|expected| m.items_received >= expected)
                    .unwrap_or(false),
                None => false,
            }
        };
        if !ready {
            return;
        }
        let finished = self.incoming.lock().take();
        self.incoming_active.store(false, Ordering::SeqCst);
        if let Some(m) = finished {
            let cp = take_checkpoint(&self.store, session);
            *self.latest_checkpoint.lock() = Some(cp);
            let _ = self.meta.mark_complete(m.migration_id, self.id());
            self.stray_migration_items.lock().remove(&m.migration_id);
            *self.completed_report.lock() = Some(MigrationReport {
                migration_id: m.migration_id,
                role: MigrationRole::Target,
                bytes_from_memory: 0,
                records_moved: m.items_received,
                indirection_records: 0,
                ssd_bytes_scanned: 0,
                duration_ms: m.started.elapsed().as_millis() as u64,
            });
            let _ = conn.send_msg(MigrationMsg::Ack {
                migration_id: m.migration_id,
                phase: MigrationAckPhase::Completed,
            });
        }
    }
}

/// Builds a hash value that maps to the same bucket and tag as the given
/// source bucket entry, so the target (whose table is the same size) places
/// the indirection record in the equivalent chain.
pub(crate) fn representative_hash(bucket: usize, tag: u16, _table_bits: u32) -> u64 {
    ((tag as u64) << 48) | bucket as u64
}

/// The smallest single range enclosing all migrating ranges (indirection
/// records store one contiguous range; migrations in this reproduction and in
/// the paper's experiments move one contiguous range at a time).
fn enclosing_range(ranges: &[HashRange], default: HashRange) -> HashRange {
    if ranges.is_empty() {
        return default;
    }
    let start = ranges.iter().map(|r| r.start).min().unwrap();
    let end = ranges.iter().map(|r| r.end).max().unwrap();
    HashRange::new(start, end)
}

/// What a local chain walk produced.
#[derive(Debug)]
pub(crate) enum LocalChainFetch {
    /// The key's newest live record.
    Found(RecordOwned),
    /// The chain was fully walked and holds no live record for the key.
    Missing,
    /// A read failed mid-walk (e.g. a nested indirection named a log this
    /// process cannot read).  The caller must keep the operation pending —
    /// the record may exist where the walk could not reach.
    Unreadable,
}

/// Follows a record chain stored on a *locally readable* shared-tier log
/// (the [`TierService`] answered `Local` for it) looking for `key`.
/// Indirection records on the chain whose range covers the key are followed
/// onto the named log — on an in-process tier every log is readable, so
/// multi-hop chains resolve transitively.
pub(crate) fn fetch_from_shared_chain(
    tier: &dyn TierService,
    source_log: LogId,
    addr: Address,
    key: u64,
) -> LocalChainFetch {
    let hash = shadowfax_faster::KeyHash::of(key).raw();
    // Chain positions still to visit, LIFO: when an indirection is followed
    // onto another log, that continuation is visited *before* the rest of
    // the current chain (it holds the newer versions of covered keys).
    let mut work: Vec<(LogId, Address)> = vec![(source_log, addr)];
    let mut hops = 0;
    while let Some((log, addr)) = work.pop() {
        if !addr.is_valid() {
            continue;
        }
        hops += 1;
        if hops > 1_000_000 {
            return LocalChainFetch::Unreadable;
        }
        let mut header_bytes = [0u8; RECORD_HEADER_BYTES];
        if tier.read_log(log, addr.raw(), &mut header_bytes).is_err() {
            return LocalChainFetch::Unreadable;
        }
        let header = RecordHeader::decode(&header_bytes);
        if header.is_null() {
            continue;
        }
        if header.flags.contains(RecordFlags::INDIRECTION) {
            // The chain continues on another log; follow it if it can cover
            // the key (its payload carries the covered range).
            let mut payload = vec![0u8; header.value_len as usize];
            if tier
                .read_log(log, addr.raw() + RECORD_HEADER_BYTES as u64, &mut payload)
                .is_err()
            {
                return LocalChainFetch::Unreadable;
            }
            work.push((log, header.prev));
            if let Some(ind) = IndirectionRecord::decode_value(&payload) {
                if ind.range.contains(hash) {
                    work.push((ind.source_log, ind.chain_address));
                }
            }
            continue;
        }
        if header.key == key {
            let mut value = vec![0u8; header.value_len as usize];
            if !value.is_empty()
                && tier
                    .read_log(log, addr.raw() + RECORD_HEADER_BYTES as u64, &mut value)
                    .is_err()
            {
                return LocalChainFetch::Unreadable;
            }
            if header.flags.contains(RecordFlags::TOMBSTONE) {
                return LocalChainFetch::Missing;
            }
            return LocalChainFetch::Found(RecordOwned { header, value });
        }
        work.push((log, header.prev));
    }
    LocalChainFetch::Missing
}

/// The outcome of one serving-side chain walk page.
#[derive(Debug)]
pub(crate) enum ChainWalk {
    /// The walk progressed: the page's records plus the address to resume
    /// from (0 when the chain is exhausted).
    Page(Vec<TierRecord>, u64),
    /// The tier failed to read at `address` mid-walk.  The chain must be
    /// reported as *unreadable*, never as exhausted — a fetcher that takes
    /// a truncated walk for the full chain would turn a transient tier
    /// error into an acknowledged "not found".
    Unreadable {
        /// The address whose read failed.
        address: u64,
    },
}

/// Walks the chain rooted at `addr` in `source_log` on the local shared
/// tier, collecting records — newest first, one per key (the first
/// occurrence on the chain is the newest version), skipping records marked
/// invalid — until `max_records` or `max_bytes` of value payload is
/// reached (at least one record always makes progress).  Tombstones and
/// indirection records are included *with their flags* so the fetching side
/// can distinguish "deleted" from "never existed".
///
/// This is the serving half of the cross-process chain-fetch protocol: the
/// process hosting the log runs it on behalf of a peer that received an
/// indirection record during migration.
pub(crate) fn read_chain_records(
    tier: &SharedBlobTier,
    source_log: LogId,
    mut addr: Address,
    max_records: usize,
    max_bytes: usize,
) -> ChainWalk {
    let mut records = Vec::new();
    let mut seen_keys: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut bytes = 0usize;
    let mut hops = 0;
    while addr.is_valid() && hops < 1_000_000 {
        if records.len() >= max_records || bytes >= max_bytes {
            return ChainWalk::Page(records, addr.raw());
        }
        let mut header_bytes = [0u8; RECORD_HEADER_BYTES];
        if tier
            .read_log(source_log, addr.raw(), &mut header_bytes)
            .is_err()
        {
            return ChainWalk::Unreadable {
                address: addr.raw(),
            };
        }
        let header = RecordHeader::decode(&header_bytes);
        if header.is_null() {
            // Zeroed space: the chain ran into never-written padding, which
            // only happens at the end of a chain.
            break;
        }
        let skip = header.flags.contains(RecordFlags::INVALID) || !seen_keys.insert(header.key);
        if !skip {
            let mut value = vec![0u8; header.value_len as usize];
            if !value.is_empty()
                && tier
                    .read_log(
                        source_log,
                        addr.raw() + RECORD_HEADER_BYTES as u64,
                        &mut value,
                    )
                    .is_err()
            {
                return ChainWalk::Unreadable {
                    address: addr.raw(),
                };
            }
            bytes += RECORD_HEADER_BYTES + value.len();
            records.push(TierRecord {
                key: header.key,
                flags: header.flags.bits(),
                value,
            });
        }
        addr = header.prev;
        hops += 1;
    }
    ChainWalk::Page(records, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn representative_hash_lands_in_same_bucket_and_tag() {
        let table_bits = 12u32;
        let bucket = 1234usize;
        let tag = 0x2ABCu16 & 0x3FFF;
        let rep = representative_hash(bucket, tag, table_bits);
        let h = KeyHash(rep);
        assert_eq!(h.bucket(table_bits), bucket);
        assert_eq!(h.tag(), tag);
    }

    #[test]
    fn enclosing_range_spans_inputs() {
        let ranges = vec![HashRange::new(100, 200), HashRange::new(400, 500)];
        let e = enclosing_range(&ranges, HashRange::FULL);
        assert_eq!(e, HashRange::new(100, 500));
        assert_eq!(
            enclosing_range(&[], HashRange::new(1, 2)),
            HashRange::new(1, 2)
        );
    }

    #[test]
    fn source_phase_roundtrip() {
        for p in [
            SourcePhase::Sampling,
            SourcePhase::Prepare,
            SourcePhase::Transfer,
            SourcePhase::Migrate,
            SourcePhase::DiskScan,
            SourcePhase::Complete,
        ] {
            assert_eq!(SourcePhase::from_u8(p as u8), p);
        }
    }
}
