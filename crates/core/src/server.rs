//! The Shadowfax server: per-thread dispatch loops over a shared FASTER
//! instance (paper §3.1, Figure 4).
//!
//! Each server runs one dispatch thread per (v)CPU.  A thread's loop polls
//! for new connections, drains request batches from its sessions, validates
//! each batch's view with a single integer comparison, executes the
//! operations against the shared FASTER instance, and replies on the same
//! session — no request or result ever crosses threads.  Between batches the
//! thread refreshes its epoch slot (letting global cuts complete), retries
//! pending operations, and contributes its share of any in-flight migration
//! (paper §3.3: migration work is interleaved with request processing).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Mutex, RwLock};

use shadowfax_faster::{Checkpoint, Faster, FasterSession, KeyHash, ReadOutcome, RecordFlags};
use shadowfax_net::{
    BatchReply, Connection, KvRequest, KvResponse, MigrationLink, RequestBatch, SimNetwork,
};
use shadowfax_obs::{Counter, EventTimeline, Gauge, MetricsRegistry};
use shadowfax_storage::{
    ChainFetch, ChainFetchRequest, LogId, SharedBlobTier, TierRecord, TierService,
};

use crate::config::{OwnershipCheck, ServerConfig};
use crate::hash_range::RangeSet;
use crate::indirection::IndirectionRecord;
use crate::messages::MigrationMsg;
use crate::meta::MetadataStore;
use crate::migration::{
    FinishingMigration, IncomingMigration, OutgoingMigration, PendMode, SourceThreadState,
};
use crate::ServerId;

/// The client-facing fabric type.
pub type KvNetwork = SimNetwork<RequestBatch, BatchReply>;
/// The server-to-server (migration) fabric type.
pub type MigrationNetwork = SimNetwork<MigrationMsg, MigrationMsg>;

/// A server-side client connection (sends replies, receives request batches).
pub(crate) type ServerKvConn = Connection<BatchReply, RequestBatch>;
/// A server-side migration connection: either an in-process fabric
/// connection or (via `shadowfax-rpc`) a real TCP migration link.
pub(crate) type ServerMigConn = Box<dyn MigrationLink<MigrationMsg>>;

/// Opens outgoing migration links to peer servers.
///
/// The in-process fabric implements this directly.  The `shadowfax-rpc`
/// crate installs a connector that inspects the peer's registered address:
/// local fabric addresses (`"sv1"`) connect in-process while socket
/// addresses (`"10.0.0.7:4870"`) open dedicated TCP migration connections,
/// which is how the migration data plane crosses OS processes.
pub trait MigrationConnector: Send + Sync {
    /// Opens a migration link to dispatch thread `thread` of server `server`,
    /// whose address registered at the metadata store is `address`.
    fn connect_migration(
        &self,
        address: &str,
        server: ServerId,
        thread: usize,
    ) -> Option<ServerMigConn>;
}

impl MigrationConnector for MigrationNetwork {
    fn connect_migration(
        &self,
        address: &str,
        _server: ServerId,
        thread: usize,
    ) -> Option<ServerMigConn> {
        self.connect(&format!("{address}/m{thread}"))
            .map(|c| Box::new(c) as ServerMigConn)
    }
}

/// A request batch whose reply is being withheld until every operation in it
/// can be completed (paper §3.3: the target "marks these requests pending,
/// and it processes them when it receives the corresponding record").
pub(crate) struct PendingBatch {
    pub(crate) conn_idx: usize,
    pub(crate) seq: u64,
    pub(crate) results: Vec<Option<KvResponse>>,
    pub(crate) unresolved: Vec<(usize, KvRequest)>,
}

/// The per-server instrument handles on the process registry, created (or
/// re-adopted, after crash recovery) under the `sv{id}.` name prefix.
pub(crate) struct ServerInstruments {
    pub(crate) pending_gauge: Gauge,
    pub(crate) total_pended: Counter,
    pub(crate) indirection_fetches: Counter,
    pub(crate) remote_chain_fetches: Counter,
    pub(crate) tier_direct_chains: Counter,
    pub(crate) migrations_cancelled: Counter,
    pub(crate) records_rolled_back: Counter,
    pub(crate) heartbeats_missed: Counter,
}

impl ServerInstruments {
    /// Creates the handles and registers the store/device counter source
    /// for server `id`.  Re-registering (crash recovery) re-adopts the
    /// existing named instruments and replaces the source closure, so the
    /// crashed incarnation's devices stop contributing.
    pub(crate) fn register(
        metrics: &MetricsRegistry,
        id: ServerId,
        store: &Arc<Faster>,
        ssd: &Arc<dyn shadowfax_storage::Device>,
    ) -> Self {
        let p = format!("sv{}", id.0);
        let instruments = ServerInstruments {
            pending_gauge: metrics.gauge(&format!("{p}.ops.pending")),
            total_pended: metrics.counter(&format!("{p}.ops.pended_total")),
            indirection_fetches: metrics.counter(&format!("{p}.indirection.fetches")),
            remote_chain_fetches: metrics.counter(&format!("{p}.chain.remote_fetches")),
            tier_direct_chains: metrics.counter(&format!("{p}.chain.tier_direct")),
            migrations_cancelled: metrics.counter(&format!("{p}.migration.cancelled")),
            records_rolled_back: metrics.counter(&format!("{p}.migration.records_rolled_back")),
            heartbeats_missed: metrics.counter(&format!("{p}.migration.heartbeats_missed")),
        };
        // The FASTER store and the SSD already keep their own relaxed
        // atomics; contribute them at snapshot time instead of rewriting
        // their hot paths.
        let store = Arc::clone(store);
        let ssd = Arc::clone(ssd);
        let key = p.clone();
        metrics.register_source(
            &key,
            Box::new(move |out| {
                let s = store.stats().snapshot();
                out.push((format!("{p}.store.reads"), s.reads));
                out.push((format!("{p}.store.upserts"), s.upserts));
                out.push((format!("{p}.store.rmws"), s.rmws));
                out.push((format!("{p}.store.deletes"), s.deletes));
                out.push((format!("{p}.store.in_place_updates"), s.in_place_updates));
                out.push((format!("{p}.store.rcu_appends"), s.rcu_appends));
                out.push((format!("{p}.store.stable_reads"), s.stable_reads));
                out.push((format!("{p}.store.sampled_copies"), s.sampled_copies));
                let d = ssd.counters().snapshot();
                out.push((format!("{p}.ssd.reads"), d.reads));
                out.push((format!("{p}.ssd.writes"), d.writes));
                out.push((format!("{p}.ssd.bytes_read"), d.bytes_read));
                out.push((format!("{p}.ssd.bytes_written"), d.bytes_written));
            }),
        );
        instruments
    }
}

/// A running Shadowfax server.
pub struct Server {
    pub(crate) config: ServerConfig,
    pub(crate) store: Arc<Faster>,
    pub(crate) meta: Arc<MetadataStore>,
    pub(crate) kv_net: Arc<KvNetwork>,
    pub(crate) mig_net: Arc<MigrationNetwork>,
    pub(crate) shared_tier: Arc<SharedBlobTier>,
    /// Resolves spilled record chains named by indirection records.  Defaults
    /// to the process-local [`SharedBlobTier`]; the RPC layer installs a
    /// router that fetches chains from peer processes over TCP when the
    /// indirection names a log this process does not host.
    pub(crate) tier_service: RwLock<Arc<dyn TierService>>,
    /// The view number the server validates batches against.  Lags the
    /// metadata store's view until the appropriate migration phase flips it.
    pub(crate) serving_view: AtomicU64,
    /// The hash ranges this server currently considers itself responsible for.
    pub(crate) owned: RwLock<RangeSet>,
    /// Overrides how outgoing migration links are opened (installed by the
    /// RPC layer so migrations can cross OS processes); `None` uses
    /// [`Server::mig_net`].
    pub(crate) mig_connector: RwLock<Option<Arc<dyn MigrationConnector>>>,
    /// Target-side state for an in-flight incoming migration.
    pub(crate) incoming: Mutex<Option<IncomingMigration>>,
    /// Record-batch items that arrived before the migration's
    /// `PrepForTransfer` (possible over TCP, where batches travel on
    /// different connections than control messages); folded into
    /// [`IncomingMigration::items_received`] when it is created.
    pub(crate) stray_migration_items: Mutex<HashMap<u64, u64>>,
    /// Source-side state for an in-flight outgoing migration.
    pub(crate) outgoing: RwLock<Option<Arc<OutgoingMigration>>>,
    /// A completed outgoing migration still waiting for the target's final
    /// acknowledgement (which marks the target side complete at this
    /// process's metadata store when the target runs elsewhere).
    pub(crate) finishing: Mutex<Option<FinishingMigration>>,
    /// Fast-path flag mirroring `finishing.is_some()`, so the per-iteration
    /// checks in every dispatch thread avoid the mutex when idle.
    pub(crate) finishing_active: AtomicBool,
    /// Fast-path flag: `true` while `incoming` holds an active migration, so
    /// the per-operation check avoids the mutex in the common case.
    pub(crate) incoming_active: AtomicBool,
    /// Bumped whenever in-flight migration state is dropped without
    /// completing (cancellation, crash-recovery abort).  Dispatch threads
    /// react by rejecting pended batches that reference hashes this server
    /// no longer owns, pushing their clients to the rolled-back owner.
    pub(crate) pend_flush_epoch: AtomicU64,
    /// The most recently completed migration's report (source or target role).
    pub(crate) completed_report: Mutex<Option<crate::migration::MigrationReport>>,
    /// The most recent checkpoint image, kept as the recovery point for this
    /// server (paper §3.3.1: migration completion checkpoints both ends so
    /// either can be recovered independently).  Updated by migration
    /// completion and by [`Server::checkpoint_now`].
    pub(crate) latest_checkpoint: Mutex<Option<Checkpoint>>,
    /// The registry every counter family below lives in (shared with the
    /// owning [`Cluster`](crate::Cluster) so one `GET_METRICS` pull sees
    /// the whole process).
    pub(crate) metrics: Arc<MetricsRegistry>,
    /// The registry's migration-lifecycle timeline (phase transitions and
    /// cancellations are stamped here).
    pub(crate) timeline: Arc<EventTimeline>,
    /// Gauge: operations currently pending at this server (Figure 12).
    pub(crate) pending_gauge: Gauge,
    /// Cumulative count of operations that ever pended.
    pub(crate) total_pended: Counter,
    /// Count of records fetched from the shared tier to resolve indirection
    /// records during normal operation.
    pub(crate) indirection_fetches: Counter,
    /// Count of chain fetches answered by a *remote* tier service (the chain
    /// was pulled from another process over the wire).
    pub(crate) remote_chain_fetches: Counter,
    /// Count of chain fetches the tier service resolved directly (the shared
    /// tier served the foreign log, no peer chain-fetch round trip).
    pub(crate) tier_direct_chains: Counter,
    /// Migrations this server cancelled (dead peer, operator request, or a
    /// peer-relayed cancellation), in either role.
    pub(crate) migrations_cancelled: Counter,
    /// Records whose shipment was undone by cancellations: items already
    /// pushed toward (or received from) the peer when the migration rolled
    /// back — they become unreachable duplicates on the dead epoch's log.
    pub(crate) records_rolled_back: Counter,
    /// Heartbeat intervals that elapsed without hearing from a migration
    /// peer (across all migrations; the liveness layer's miss counter).
    pub(crate) heartbeats_missed: Counter,
    /// Per-dispatch-thread loop counters.  A thread increments its counter at
    /// the top of every loop iteration; migration uses them to wait until
    /// every thread has passed an operation-sequence boundary after the
    /// ownership-transfer cut (so no old-view batch is still executing when
    /// the hot set and migrated records are read).
    pub(crate) loop_generation: Box<[AtomicU64]>,
    pub(crate) shutdown: AtomicBool,
    pub(crate) threads_running: AtomicUsize,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("id", &self.config.id)
            .field("view", &self.serving_view())
            .field("owned_ranges", &self.owned.read().len())
            .field("pending_ops", &self.pending_ops())
            .finish()
    }
}

impl Server {
    /// Creates a server, registers it with the metadata store as the owner of
    /// `initial_ranges`, and returns it (threads are started separately with
    /// [`Server::spawn_threads`]).
    pub fn new(
        config: ServerConfig,
        initial_ranges: RangeSet,
        meta: Arc<MetadataStore>,
        kv_net: Arc<KvNetwork>,
        mig_net: Arc<MigrationNetwork>,
        shared_tier: Arc<SharedBlobTier>,
        metrics: Arc<MetricsRegistry>,
    ) -> Arc<Self> {
        config.validate();
        let epoch = Arc::new(shadowfax_epoch::EpochManager::new());
        let ssd = Arc::new(shadowfax_storage::SimSsd::new(
            config.faster.log.ssd_capacity,
        ));
        let shared_handle = shared_tier.handle(LogId(config.id.0 as u64));
        let store = Faster::new(
            config.faster,
            Arc::clone(&ssd) as Arc<dyn shadowfax_storage::Device>,
            Some(shared_handle),
            epoch,
        );
        meta.register_server(
            config.id,
            config.address(),
            config.threads,
            initial_ranges.clone(),
        );
        let view = meta.view_of(config.id).unwrap_or(1);
        let tier_service: Arc<dyn TierService> = Arc::clone(&shared_tier) as Arc<dyn TierService>;
        let instruments = ServerInstruments::register(
            &metrics,
            config.id,
            &store,
            &(Arc::clone(&ssd) as Arc<dyn shadowfax_storage::Device>),
        );
        let timeline = metrics.timeline();
        Arc::new(Server {
            store,
            meta,
            kv_net,
            mig_net,
            shared_tier,
            tier_service: RwLock::new(tier_service),
            serving_view: AtomicU64::new(view),
            owned: RwLock::new(initial_ranges),
            mig_connector: RwLock::new(None),
            incoming: Mutex::new(None),
            stray_migration_items: Mutex::new(HashMap::new()),
            outgoing: RwLock::new(None),
            finishing: Mutex::new(None),
            finishing_active: AtomicBool::new(false),
            incoming_active: AtomicBool::new(false),
            pend_flush_epoch: AtomicU64::new(0),
            completed_report: Mutex::new(None),
            latest_checkpoint: Mutex::new(None),
            metrics,
            timeline,
            pending_gauge: instruments.pending_gauge,
            total_pended: instruments.total_pended,
            indirection_fetches: instruments.indirection_fetches,
            remote_chain_fetches: instruments.remote_chain_fetches,
            tier_direct_chains: instruments.tier_direct_chains,
            migrations_cancelled: instruments.migrations_cancelled,
            records_rolled_back: instruments.records_rolled_back,
            heartbeats_missed: instruments.heartbeats_missed,
            loop_generation: (0..config.threads).map(|_| AtomicU64::new(0)).collect(),
            shutdown: AtomicBool::new(false),
            threads_running: AtomicUsize::new(0),
            config,
        })
    }

    /// The server's id.
    pub fn id(&self) -> ServerId {
        self.config.id
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The shared FASTER instance.
    pub fn store(&self) -> &Arc<Faster> {
        &self.store
    }

    /// The log id under which this server writes to the shared tier.
    pub fn log_id(&self) -> LogId {
        LogId(self.config.id.0 as u64)
    }

    /// The shared blob tier this server's log spills to.
    pub fn shared_tier(&self) -> &Arc<SharedBlobTier> {
        &self.shared_tier
    }

    /// The view number currently used to validate batches.
    pub fn serving_view(&self) -> u64 {
        self.serving_view.load(Ordering::SeqCst)
    }

    /// The hash ranges this server currently owns.
    pub fn owned_ranges(&self) -> RangeSet {
        self.owned.read().clone()
    }

    /// Overrides the owned range set without a migration (used by the
    /// Figure 15 experiment to install many hash splits).
    pub fn set_owned_ranges(&self, ranges: RangeSet) {
        *self.owned.write() = ranges;
    }

    /// Number of operations currently pending at this server (Figure 12).
    pub fn pending_ops(&self) -> u64 {
        self.pending_gauge.value()
    }

    /// Cumulative number of operations that ever pended.
    pub fn total_pended_ops(&self) -> u64 {
        self.total_pended.value()
    }

    /// Operations completed by this server since start (throughput sampling).
    pub fn completed_ops(&self) -> u64 {
        self.store.stats().completed_ops()
    }

    /// Records fetched from the shared tier to resolve indirection records.
    pub fn indirection_fetches(&self) -> u64 {
        self.indirection_fetches.value()
    }

    /// Chain fetches that were answered by a remote tier service (i.e. the
    /// spilled chain lived in another process and crossed the wire).
    pub fn remote_chain_fetches(&self) -> u64 {
        self.remote_chain_fetches.value()
    }

    /// The process metrics registry this server's instruments live in.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Migrations this server cancelled (either role).
    pub fn migrations_cancelled(&self) -> u64 {
        self.migrations_cancelled.value()
    }

    /// Shipped/received migration items undone by cancellations.
    pub fn records_rolled_back(&self) -> u64 {
        self.records_rolled_back.value()
    }

    /// Heartbeat intervals that elapsed without hearing from a migration
    /// peer.
    pub fn heartbeats_missed(&self) -> u64 {
        self.heartbeats_missed.value()
    }

    /// Cancels migration `migration_id` if this server is involved in it
    /// (either role).  Used by the operator control plane (`shadowfax-cli
    /// cancel`); liveness-triggered cancellation calls the role-specific
    /// paths directly from the dispatch loop.  Returns `true` if in-flight
    /// state was rolled back here.
    pub fn cancel_migration_local(self: &Arc<Self>, migration_id: u64) -> bool {
        let session = self.store.start_session();
        self.cancel_local_roles(migration_id, "operator request", &session)
    }

    /// Cancels every role this server holds in `migration_id`: an in-flight
    /// outgoing migration, an in-flight incoming one, or a completed source
    /// side still awaiting the target's final acknowledgement.  Returns
    /// `true` if any state was rolled back.
    pub(crate) fn cancel_local_roles(
        self: &Arc<Self>,
        migration_id: u64,
        reason: &str,
        session: &FasterSession,
    ) -> bool {
        let mut any = self.cancel_outgoing_migration(migration_id, reason, session);
        any |= self.cancel_incoming_migration(migration_id, reason, session);
        let finishing = {
            let mut slot = self.finishing.lock();
            match slot.as_ref() {
                Some(f) if f.migration_id == migration_id => {
                    self.finishing_active.store(false, Ordering::SeqCst);
                    slot.take()
                }
                _ => None,
            }
        };
        if let Some(fin) = finishing {
            self.cancel_finishing(fin, reason, session);
            any = true;
        }
        any
    }

    /// Replaces the service used to resolve spilled chains named by
    /// indirection records.  The default reads the process-local
    /// [`SharedBlobTier`]; the RPC layer installs a router that dials the
    /// process hosting the log when the indirection names a remote one.
    pub fn set_tier_service(&self, service: Arc<dyn TierService>) {
        *self.tier_service.write() = service;
    }

    /// `true` while an outgoing (source-side) migration is in flight.
    pub fn migration_in_progress(&self) -> bool {
        self.outgoing.read().is_some() || self.incoming.lock().is_some()
    }

    /// Installs the connector used to open outgoing migration links,
    /// replacing the default (the in-process migration fabric).  The RPC
    /// layer installs a TCP-capable connector here so migrations can reach
    /// servers in other OS processes.
    pub fn set_migration_connector(&self, connector: Arc<dyn MigrationConnector>) {
        *self.mig_connector.write() = Some(connector);
    }

    /// Opens a migration link to dispatch thread `thread` of the server
    /// registered at `address`.
    pub(crate) fn connect_migration(
        &self,
        address: &str,
        server: ServerId,
        thread: usize,
    ) -> Option<ServerMigConn> {
        let connector = self.mig_connector.read().clone();
        match connector {
            Some(c) => c.connect_migration(address, server, thread),
            None => self.mig_net.connect_migration(address, server, thread),
        }
    }

    /// The network address of dispatch thread `t`.
    pub fn thread_address(&self, t: usize) -> String {
        format!(
            "{}/t{}",
            self.config.address(),
            t % self.config.threads.max(1)
        )
    }

    /// The migration-network address of dispatch thread `t`.
    pub fn migration_address(&self, t: usize) -> String {
        format!(
            "{}/m{}",
            self.config.address(),
            t % self.config.threads.max(1)
        )
    }

    /// Starts the server's dispatch threads.  Returns a handle used to stop
    /// them.
    pub fn spawn_threads(self: &Arc<Self>) -> ServerHandle {
        let mut joins = Vec::with_capacity(self.config.threads);
        for t in 0..self.config.threads {
            let server = Arc::clone(self);
            joins.push(
                std::thread::Builder::new()
                    .name(format!("{}-t{}", self.config.address(), t))
                    .spawn(move || server.run_thread(t))
                    .expect("failed to spawn server thread"),
            );
        }
        // Wait until every thread has registered its listeners so clients can
        // connect immediately after this returns.
        while self.threads_running.load(Ordering::SeqCst) < self.config.threads {
            std::thread::yield_now();
        }
        ServerHandle {
            server: Arc::clone(self),
            joins,
        }
    }

    /// Requests shutdown of all dispatch threads.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    // ------------------------------------------------------------------
    // Dispatch loop
    // ------------------------------------------------------------------

    fn run_thread(self: Arc<Self>, thread_id: usize) {
        let session = self.store.start_session();
        let kv_listener = self.kv_net.listen(&self.thread_address(thread_id));
        let mig_listener = self.mig_net.listen(&self.migration_address(thread_id));
        self.threads_running.fetch_add(1, Ordering::SeqCst);

        let mut kv_conns: Vec<ServerKvConn> = Vec::new();
        let mut mig_conns: Vec<ServerMigConn> = Vec::new();
        let mut pending: Vec<PendingBatch> = Vec::new();
        let mut source_state = SourceThreadState::new(thread_id);
        let mut pend_flush_seen = self.pend_flush_epoch.load(Ordering::SeqCst);

        while !self.shutdown.load(Ordering::SeqCst) {
            // Mark an operation-sequence boundary for this thread: every batch
            // accepted in earlier iterations has fully completed by now.
            self.loop_generation[thread_id].fetch_add(1, Ordering::SeqCst);
            let mut did_work = false;

            // New connections.
            let new_kv = kv_listener.accept_all();
            let new_mig = mig_listener.accept_all();
            did_work |= !new_kv.is_empty() || !new_mig.is_empty();
            kv_conns.extend(new_kv);
            mig_conns.extend(new_mig.into_iter().map(|c| Box::new(c) as ServerMigConn));

            // Client request batches.
            for conn_idx in 0..kv_conns.len() {
                while let Some(batch) = kv_conns[conn_idx].try_recv() {
                    did_work = true;
                    self.process_batch(batch, conn_idx, &kv_conns, &mut pending, &session);
                }
            }

            // Migration messages from peer servers.
            for conn in &mig_conns {
                while let Ok(Some(msg)) = conn.try_recv_msg() {
                    did_work = true;
                    self.handle_migration_msg(msg, conn, &session);
                }
            }

            // A cancelled incoming migration orphans batches that pended for
            // the (no longer owned) migrating ranges: reject them so their
            // clients re-route to the post-cancellation owner, instead of
            // answering from a store that only received part of the data.
            let flush_epoch = self.pend_flush_epoch.load(Ordering::SeqCst);
            if flush_epoch != pend_flush_seen {
                pend_flush_seen = flush_epoch;
                did_work |= self.reject_unowned_pending(&mut pending, &kv_conns);
            }

            // Retry pending operations (bounded per iteration).
            did_work |= self.retry_pending(&mut pending, &kv_conns, &session);

            // Contribute this thread's share of any outgoing migration.
            did_work |= self.drive_outgoing(&mut source_state, &session);

            // Collect the target's final acknowledgement of a migration that
            // already completed on this (source) side: it arrives on the
            // control link (thread 0 watches it) or on whichever per-thread
            // records link delivered the last batch.  The control link is
            // also heartbeated there, so a target that dies at this stage
            // cancels the migration instead of wedging the dependency.
            if thread_id == 0 {
                did_work |= self.drive_finishing(&session);
                // Target side of the liveness protocol: cancel an incoming
                // migration whose source has gone silent.
                did_work |= self.drive_incoming_liveness(&session);
            }
            did_work |= self.drive_finishing_thread(&source_state);

            // Let global cuts (view changes, checkpoints, log maintenance)
            // make progress, then yield if idle.
            session.refresh();
            if !did_work {
                std::thread::yield_now();
            }
        }

        self.kv_net.unlisten(&self.thread_address(thread_id));
        self.mig_net.unlisten(&self.migration_address(thread_id));
        self.threads_running.fetch_sub(1, Ordering::SeqCst);
    }

    // ------------------------------------------------------------------
    // Batch processing
    // ------------------------------------------------------------------

    fn validate_batch(&self, batch: &RequestBatch) -> bool {
        match self.config.ownership_check {
            OwnershipCheck::ViewValidation => batch.view == self.serving_view(),
            OwnershipCheck::HashValidation => {
                // Per-key hash-range membership check (the costly baseline of
                // Figure 15).  The view is still consulted so that migration
                // cut-over remains correct.
                if batch.view != self.serving_view() {
                    return false;
                }
                let owned = self.owned.read();
                batch
                    .ops
                    .iter()
                    .all(|op| owned.contains(KeyHash::of(op.key()).raw()))
            }
        }
    }

    fn process_batch(
        &self,
        batch: RequestBatch,
        conn_idx: usize,
        kv_conns: &[ServerKvConn],
        pending: &mut Vec<PendingBatch>,
        session: &FasterSession,
    ) {
        if !self.validate_batch(&batch) {
            kv_conns[conn_idx].send(BatchReply::Rejected {
                seq: batch.seq,
                server_view: self.serving_view(),
            });
            return;
        }
        let mut results: Vec<Option<KvResponse>> = vec![None; batch.ops.len()];
        let mut unresolved: Vec<(usize, KvRequest)> = Vec::new();
        for (i, op) in batch.ops.into_iter().enumerate() {
            match self.execute_op(&op, false, session) {
                ExecOutcome::Done(resp) => results[i] = Some(resp),
                ExecOutcome::Pend => {
                    self.pending_gauge.add(1);
                    self.total_pended.inc();
                    unresolved.push((i, op));
                }
            }
        }
        if unresolved.is_empty() {
            kv_conns[conn_idx].send(BatchReply::Executed {
                seq: batch.seq,
                results: results.into_iter().map(|r| r.unwrap()).collect(),
            });
        } else {
            pending.push(PendingBatch {
                conn_idx,
                seq: batch.seq,
                results,
                unresolved,
            });
        }
    }

    /// Retries pending operations; completes and replies to batches whose
    /// operations have all resolved.  Returns `true` if any progress was made.
    fn retry_pending(
        &self,
        pending: &mut Vec<PendingBatch>,
        kv_conns: &[ServerKvConn],
        session: &FasterSession,
    ) -> bool {
        if pending.is_empty() {
            return false;
        }
        let mut budget = self.config.migration.pending_retries_per_iteration;
        let mut progressed = false;
        for batch in pending.iter_mut() {
            if budget == 0 {
                break;
            }
            let mut still_unresolved = Vec::with_capacity(batch.unresolved.len());
            for (idx, op) in batch.unresolved.drain(..) {
                if budget == 0 {
                    still_unresolved.push((idx, op));
                    continue;
                }
                budget -= 1;
                match self.execute_op(&op, true, session) {
                    ExecOutcome::Done(resp) => {
                        batch.results[idx] = Some(resp);
                        self.pending_gauge.sub(1);
                        progressed = true;
                    }
                    ExecOutcome::Pend => still_unresolved.push((idx, op)),
                }
            }
            batch.unresolved = still_unresolved;
        }
        // Reply to fully resolved batches.
        let mut i = 0;
        while i < pending.len() {
            if pending[i].unresolved.is_empty() {
                let done = pending.swap_remove(i);
                kv_conns[done.conn_idx].send(BatchReply::Executed {
                    seq: done.seq,
                    results: done.results.into_iter().map(|r| r.unwrap()).collect(),
                });
                progressed = true;
            } else {
                i += 1;
            }
        }
        progressed
    }

    /// Fails over pending batches that reference hashes this server no
    /// longer owns (their migration was cancelled out from under them).
    /// Answering such a batch locally could serve a miss — or a partially
    /// migrated value — for a key the rolled-back owner still holds, so:
    ///
    /// * a batch with **no** executed operations gets a standard view
    ///   rejection — the client refreshes ownership and re-routes every
    ///   operation to the post-cancellation owner;
    /// * a batch where some operations **already executed** is kept — a
    ///   rejection would make the client re-issue the executed ones
    ///   (double-applying RMWs).  Only the orphaned operations complete,
    ///   with a typed error (their issuer retries explicitly); still-owned
    ///   pending operations keep pending and resolve normally.
    pub(crate) fn reject_unowned_pending(
        &self,
        pending: &mut Vec<PendingBatch>,
        kv_conns: &[ServerKvConn],
    ) -> bool {
        if pending.is_empty() {
            return false;
        }
        let view = self.serving_view();
        let owned = self.owned.read();
        let mut progressed = false;
        let mut i = 0;
        while i < pending.len() {
            let batch = &mut pending[i];
            let has_orphan = batch
                .unresolved
                .iter()
                .any(|(_, op)| !owned.contains(KeyHash::of(op.key()).raw()));
            if !has_orphan {
                i += 1;
                continue;
            }
            if batch.results.iter().all(|r| r.is_none()) {
                let batch = pending.swap_remove(i);
                self.pending_gauge.sub(batch.unresolved.len() as u64);
                kv_conns[batch.conn_idx].send(BatchReply::Rejected {
                    seq: batch.seq,
                    server_view: view,
                });
                progressed = true;
                continue;
            }
            // Partially executed: fail exactly the orphaned operations.
            let unresolved = std::mem::take(&mut batch.unresolved);
            for (idx, op) in unresolved {
                if owned.contains(KeyHash::of(op.key()).raw()) {
                    batch.unresolved.push((idx, op));
                } else {
                    batch.results[idx] = Some(KvResponse::Error(
                        "hash range no longer owned (migration cancelled); \
                         retry against the current owner"
                            .into(),
                    ));
                    self.pending_gauge.sub(1);
                    progressed = true;
                }
            }
            if batch.unresolved.is_empty() {
                let done = pending.swap_remove(i);
                kv_conns[done.conn_idx].send(BatchReply::Executed {
                    seq: done.seq,
                    results: done.results.into_iter().map(|r| r.unwrap()).collect(),
                });
            } else {
                i += 1;
            }
        }
        progressed
    }

    /// Executes one operation.  `is_retry` permits slow work (shared-tier
    /// fetches) that the first attempt defers by pending the operation.
    fn execute_op(&self, op: &KvRequest, is_retry: bool, session: &FasterSession) -> ExecOutcome {
        let key = op.key();
        let hash = KeyHash::of(key).raw();

        // Target-side pending rules while an incoming migration is active.
        // The atomic flag keeps the common (no migration) case lock-free.
        let pend_mode = if self.incoming_active.load(Ordering::Relaxed) {
            let incoming = self.incoming.lock();
            incoming
                .as_ref()
                .filter(|m| m.ranges.contains(hash))
                .map(|m| m.mode)
        } else {
            None
        };
        if let Some(PendMode::PendAll) = pend_mode {
            return ExecOutcome::Pend;
        }

        match op {
            KvRequest::Upsert { key, value } => match session.upsert(*key, value) {
                Ok(()) => ExecOutcome::Done(KvResponse::Ok),
                Err(e) => ExecOutcome::Done(KvResponse::Error(e.to_string())),
            },
            KvRequest::Delete { key } => match session.delete(*key) {
                Ok(existed) => ExecOutcome::Done(KvResponse::Deleted(existed)),
                Err(e) => ExecOutcome::Done(KvResponse::Error(e.to_string())),
            },
            KvRequest::Read { key } | KvRequest::RmwAdd { key, .. } => {
                // Both need the current record; look it up first.
                match session.read_outcome(*key) {
                    Ok(ReadOutcome::Found { record, .. }) if record.is_indirection() => {
                        if !is_retry {
                            // Defer the shared-tier access: the op pends and a
                            // later retry performs the fetch (paper §3.3.2).
                            return ExecOutcome::Pend;
                        }
                        match self.resolve_indirection(*key, record.value(), session) {
                            IndirectionFetch::Resolved => self.execute_resolved(op, session),
                            IndirectionFetch::Missing => self.finish_missing(op, session),
                            // The chain lives in a process we could not reach
                            // (or the fetch was rejected): the record is not
                            // resolvable *yet*, which must never be reported
                            // as a miss.  Stay pending and retry.
                            IndirectionFetch::Unavailable => ExecOutcome::Pend,
                        }
                    }
                    Ok(ReadOutcome::Found { .. }) => self.execute_resolved(op, session),
                    Ok(ReadOutcome::NotFound) => {
                        if pend_mode == Some(PendMode::PendMissing) {
                            // The record may simply not have been migrated yet.
                            ExecOutcome::Pend
                        } else {
                            self.finish_missing(op, session)
                        }
                    }
                    Err(e) => ExecOutcome::Done(KvResponse::Error(e.to_string())),
                }
            }
        }
    }

    /// Executes a read or RMW once the record is known to be locally present.
    fn execute_resolved(&self, op: &KvRequest, session: &FasterSession) -> ExecOutcome {
        match op {
            KvRequest::Read { key } => match session.read(*key) {
                Ok(v) => ExecOutcome::Done(KvResponse::Value(v)),
                Err(e) => ExecOutcome::Done(KvResponse::Error(e.to_string())),
            },
            KvRequest::RmwAdd { key, delta } => {
                // The record exists; the initial value is only used if it was
                // concurrently deleted, in which case YCSB-F semantics apply.
                let initial = vec![0u8; 256];
                match session.rmw_add(*key, *delta, &initial) {
                    Ok(counter) => ExecOutcome::Done(KvResponse::Counter(counter)),
                    Err(e) => ExecOutcome::Done(KvResponse::Error(e.to_string())),
                }
            }
            _ => unreachable!("execute_resolved only handles reads and RMWs"),
        }
    }

    /// Completes a read or RMW for a key that genuinely does not exist.
    fn finish_missing(&self, op: &KvRequest, session: &FasterSession) -> ExecOutcome {
        match op {
            KvRequest::Read { .. } => ExecOutcome::Done(KvResponse::Value(None)),
            KvRequest::RmwAdd { key, delta } => {
                // YCSB-F semantics: missing records are created with a zeroed
                // 256-byte value before the increment is applied.
                let initial = vec![0u8; 256];
                match session.rmw_add(*key, *delta, &initial) {
                    Ok(counter) => ExecOutcome::Done(KvResponse::Counter(counter)),
                    Err(e) => ExecOutcome::Done(KvResponse::Error(e.to_string())),
                }
            }
            _ => unreachable!(),
        }
    }

    /// Fetches the record for `key` by following the chain named by an
    /// indirection record's payload — through the installed [`TierService`],
    /// so the chain may live on the process-local shared tier or in another
    /// process reached over the wire — and inserts what it finds locally.
    fn resolve_indirection(
        &self,
        key: u64,
        payload: &[u8],
        session: &FasterSession,
    ) -> IndirectionFetch {
        let Some(ind) = IndirectionRecord::decode_value(payload) else {
            return IndirectionFetch::Missing;
        };
        self.resolve_indirection_record(key, &ind, 0, session)
    }

    /// Resolves one indirection record through the tier service.  `depth`
    /// counts nested hops already taken: a fetched chain may itself contain
    /// an indirection record (the chain's owner was once a migration target
    /// too — a three-or-more-process chain); such nested hops are followed
    /// transitively up to [`MAX_NESTED_HOPS`], past which the operation is
    /// kept pending.  When the tier answers [`ChainFetch::Local`] the walk
    /// happens directly against the (process-local or genuinely shared)
    /// tier, which follows nesting itself at no per-hop cost —
    /// `chain.tier_direct` counts those; `chain.remote_fetches` counts
    /// chains fetched through the per-hop RPC fallback instead.
    fn resolve_indirection_record(
        &self,
        key: u64,
        ind: &IndirectionRecord,
        depth: u8,
        session: &FasterSession,
    ) -> IndirectionFetch {
        let service = self.tier_service.read().clone();
        let request = ChainFetchRequest {
            log: ind.source_log,
            address: ind.chain_address.raw(),
            key,
            requester: self.config.id.0 as u64,
            view: self.serving_view(),
        };
        match service.fetch_chain(&request) {
            ChainFetch::Local => {
                self.tier_direct_chains.inc();
                match crate::migration::fetch_from_shared_chain(
                    service.as_ref(),
                    ind.source_log,
                    ind.chain_address,
                    key,
                ) {
                    crate::migration::LocalChainFetch::Found(record) => {
                        self.indirection_fetches.inc();
                        self.insert_fetched_record(key, record.value(), false, session);
                        IndirectionFetch::Resolved
                    }
                    crate::migration::LocalChainFetch::Tombstone => {
                        self.indirection_fetches.inc();
                        // Cache the deletion locally: later reads resolve here
                        // instead of re-walking the chain, and — when this walk
                        // was a nested hop — the caller's fallback to older
                        // records is gated by the cached tombstone instead of
                        // resurrecting a pre-delete version.
                        self.insert_fetched_record(key, &[], true, session);
                        IndirectionFetch::Missing
                    }
                    crate::migration::LocalChainFetch::Missing => IndirectionFetch::Missing,
                    crate::migration::LocalChainFetch::Unreadable => IndirectionFetch::Unavailable,
                }
            }
            ChainFetch::Records(records) => {
                self.indirection_fetches.inc();
                self.remote_chain_fetches.inc();
                self.absorb_chain_records(key, &ind.range, &records, depth, session)
            }
            ChainFetch::Unavailable(_) => IndirectionFetch::Unavailable,
        }
    }

    /// Applies a remotely fetched chain batch: every live record whose hash
    /// falls in the indirection's covered range is inserted (unless a newer
    /// local version exists), amortizing the round trip over the whole
    /// chain.  Reports whether the requested `key` was found live.
    ///
    /// A fetched chain may itself contain an indirection record (the chain's
    /// owner received it in an earlier migration — a three-or-more-process
    /// chain).  When one covers the requested key it is followed
    /// transitively with another fetch, up to [`MAX_NESTED_HOPS`] levels
    /// deep; only nesting past that cap keeps the operation pending.
    fn absorb_chain_records(
        &self,
        key: u64,
        range: &crate::hash_range::HashRange,
        records: &[TierRecord],
        depth: u8,
        session: &FasterSession,
    ) -> IndirectionFetch {
        // Records arrive newest-first; only the first relevant occurrence
        // for the requested key (its newest spilled version, or the newest
        // indirection whose range covers it) decides the outcome.
        let hash = KeyHash::of(key).raw();
        let mut requested: Option<IndirectionFetch> = None;
        // Ranges covered by nested indirections seen so far on the chain.
        // Records *below* such an indirection are older than whatever lives
        // behind it on the third process's log: neither their values nor
        // their outcomes can be trusted, so they are skipped entirely —
        // caching one would later serve a stale version.
        let mut shadowed: Vec<crate::hash_range::HashRange> = Vec::new();
        for rec in records {
            let flags = RecordFlags::from_bits(rec.flags);
            if flags.contains(RecordFlags::INDIRECTION) {
                // An indirection on the *source's* chain: the chain
                // continues on a third process's log.
                if let Some(nested) = IndirectionRecord::decode_value(&rec.value) {
                    if requested.is_none() && nested.range.contains(hash) {
                        requested = if depth < MAX_NESTED_HOPS {
                            // Follow the nested hop from the requesting side.
                            match self.resolve_indirection_record(key, &nested, depth + 1, session)
                            {
                                IndirectionFetch::Resolved => Some(IndirectionFetch::Resolved),
                                // The nested chain holds no live record for
                                // the key, so older records *below* this
                                // indirection are the newest survivors — let
                                // them decide the outcome.
                                IndirectionFetch::Missing => None,
                                // Not resolvable yet; must never read as a
                                // miss.
                                IndirectionFetch::Unavailable => {
                                    Some(IndirectionFetch::Unavailable)
                                }
                            }
                        } else {
                            // Nesting past the hop cap: resolving it would
                            // take yet another fetch against a chain that is
                            // still growing hops; keep the operation pending
                            // (a later retry resolves it through the shared
                            // tier directly).
                            Some(IndirectionFetch::Unavailable)
                        };
                    }
                    shadowed.push(nested.range);
                }
                continue;
            }
            if flags.contains(RecordFlags::INVALID) {
                continue;
            }
            let rec_hash = KeyHash::of(rec.key).raw();
            let tombstone = flags.contains(RecordFlags::TOMBSTONE);
            if rec.key == key && requested.is_none() {
                // Reaching here with the key's hash shadowed means the
                // nested hop reported the key missing behind the
                // indirection, so this older record is its newest survivor.
                requested = Some(if tombstone {
                    IndirectionFetch::Missing
                } else {
                    IndirectionFetch::Resolved
                });
                if range.contains(rec_hash) {
                    self.insert_fetched_record(rec.key, &rec.value, tombstone, session);
                }
                continue;
            }
            if shadowed.iter().any(|r| r.contains(rec_hash)) {
                continue;
            }
            if !range.contains(rec_hash) {
                continue;
            }
            // Tombstones are cached too: overwriting the local indirection
            // record means later reads of the deleted key resolve locally
            // instead of re-fetching the chain on every attempt.
            self.insert_fetched_record(rec.key, &rec.value, tombstone, session);
        }
        requested.unwrap_or(IndirectionFetch::Missing)
    }

    /// Inserts a record fetched from the shared tier unless a newer local
    /// version (anything that is not an indirection record — a local
    /// tombstone counts: it must not be overwritten by an older fetched
    /// value) already exists.
    fn insert_fetched_record(
        &self,
        key: u64,
        value: &[u8],
        tombstone: bool,
        session: &FasterSession,
    ) {
        match self.store.read_record_for(key, session) {
            Ok(ReadOutcome::Found { ref record, .. }) if !record.is_indirection() => {}
            _ => {
                let flags = if tombstone {
                    RecordFlags::TOMBSTONE
                } else {
                    RecordFlags::empty()
                };
                let _ = self.store.insert_record(key, value, flags, session);
            }
        }
    }
}

/// Nested indirection hops followed transitively while resolving one read
/// through RPC-fetched chains (a chain that crossed N hosts carries N-1
/// levels of nesting).  Deeper chains than any realistic migration
/// sequence produces stay pending until the shared tier resolves them
/// directly — the cap only guards against indirection cycles from
/// corrupted records.
const MAX_NESTED_HOPS: u8 = 4;

enum ExecOutcome {
    Done(KvResponse),
    Pend,
}

/// What resolving an indirection record produced.
enum IndirectionFetch {
    /// The record was fetched and inserted locally.
    Resolved,
    /// The chain holds no live record for the key.
    Missing,
    /// The chain could not be read right now (remote tier unreachable or the
    /// fetch was rejected); the operation must stay pending.
    Unavailable,
}

/// Join handle for a server's dispatch threads.
pub struct ServerHandle {
    server: Arc<Server>,
    joins: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("server", &self.server.id())
            .field("threads", &self.joins.len())
            .finish()
    }
}

impl ServerHandle {
    /// The server being run.
    pub fn server(&self) -> &Arc<Server> {
        &self.server
    }

    /// Stops the dispatch threads and waits for them to exit.
    pub fn shutdown(self) {
        self.server.request_shutdown();
        for j in self.joins {
            let _ = j.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, ClusterConfig};
    use crate::config::ClientConfig;
    use crate::hash_range::HashRange;
    use crate::ServerId;
    use shadowfax_faster::Address;
    use shadowfax_storage::{ChainFetch, ChainFetchRequest, DeviceError};
    use std::time::{Duration, Instant};

    /// A tier service whose chains are scripted per log id, recording every
    /// fetch.  Stands in for the RPC layer's `RemoteTierService` so the
    /// requesting-side transitive-hop logic can be tested without three OS
    /// processes.  Logs backed by `local` answer `Local` and are walked
    /// through `read_log`, exactly as a log hosted by this process would be.
    struct ScriptedTier {
        chains: HashMap<u64, Vec<TierRecord>>,
        fetched: Mutex<Vec<u64>>,
        local: Option<(u64, Arc<SharedBlobTier>)>,
    }

    impl TierService for ScriptedTier {
        fn read_log(
            &self,
            log: LogId,
            offset: u64,
            buf: &mut [u8],
        ) -> shadowfax_storage::Result<()> {
            match &self.local {
                Some((id, tier)) if *id == log.0 => tier.read_log(log, offset, buf),
                _ => Err(DeviceError::UnknownLog(log.0)),
            }
        }

        fn fetch_chain(&self, req: &ChainFetchRequest) -> ChainFetch {
            self.fetched.lock().push(req.log.0);
            if matches!(&self.local, Some((id, _)) if *id == req.log.0) {
                return ChainFetch::Local;
            }
            match self.chains.get(&req.log.0) {
                Some(records) => ChainFetch::Records(records.clone()),
                None => ChainFetch::Unavailable(format!("no scripted chain for log {}", req.log)),
            }
        }
    }

    fn indirection_payload(log: u64, address: u64) -> Vec<u8> {
        IndirectionRecord {
            range: HashRange::FULL,
            chain_address: Address::new(address),
            source_log: LogId(log),
            representative_hash: 0,
        }
        .encode_value()
    }

    fn indirection_record(log: u64, address: u64) -> TierRecord {
        TierRecord {
            key: u64::MAX, // placeholder key, as on a real chain
            flags: RecordFlags::INDIRECTION.bits(),
            value: indirection_payload(log, address),
        }
    }

    /// ROADMAP limit (a) from the chain-fetch work, fixed: a remotely
    /// fetched chain containing an indirection record (a three-process
    /// chain) is followed one nested hop on the requesting side instead of
    /// pending forever.
    #[test]
    fn nested_indirection_in_fetched_chain_is_followed_one_hop() {
        let cluster = Cluster::start(ClusterConfig::two_server_test());
        let server = cluster.server(ServerId(0)).unwrap();
        let session = server.store().start_session();
        let key = 7_007u64;

        // The local store holds an indirection pointing at log 50; log 50's
        // chain holds only another indirection pointing at log 60, whose
        // chain holds the live record.
        let tier = Arc::new(ScriptedTier {
            chains: HashMap::from([
                (50, vec![indirection_record(60, 128)]),
                (
                    60,
                    vec![TierRecord {
                        key,
                        flags: 0,
                        value: b"behind-two-hops".to_vec(),
                    }],
                ),
            ]),
            fetched: Mutex::new(Vec::new()),
            local: None,
        });
        cluster.set_tier_service(Arc::clone(&tier) as Arc<dyn TierService>);
        server
            .store()
            .insert_record(
                key,
                &indirection_payload(50, 64),
                RecordFlags::INDIRECTION,
                &session,
            )
            .unwrap();

        let mut client = cluster.client(ClientConfig::default());
        assert_eq!(
            client.read(key),
            Some(b"behind-two-hops".to_vec()),
            "the nested hop was not followed"
        );
        let fetched = tier.fetched.lock().clone();
        assert_eq!(
            fetched,
            vec![50, 60],
            "expected the first fetch to chase the nested indirection once"
        );
        cluster.shutdown();
    }

    /// A nested chain that reports the key missing falls back to the older
    /// records *below* the indirection on the first chain — they are the
    /// newest surviving versions.
    #[test]
    fn nested_hop_miss_falls_back_to_records_below_the_indirection() {
        let cluster = Cluster::start(ClusterConfig::two_server_test());
        let server = cluster.server(ServerId(0)).unwrap();
        let session = server.store().start_session();
        let key = 8_008u64;

        let tier = Arc::new(ScriptedTier {
            chains: HashMap::from([
                (
                    50,
                    vec![
                        indirection_record(60, 128),
                        // Below (older than) the indirection on log 50's
                        // chain: the key's newest surviving version.
                        TierRecord {
                            key,
                            flags: 0,
                            value: b"survivor-below".to_vec(),
                        },
                    ],
                ),
                // The nested chain has records, none for the key.
                (
                    60,
                    vec![TierRecord {
                        key: 1,
                        flags: 0,
                        value: b"other".to_vec(),
                    }],
                ),
            ]),
            fetched: Mutex::new(Vec::new()),
            local: None,
        });
        cluster.set_tier_service(Arc::clone(&tier) as Arc<dyn TierService>);
        server
            .store()
            .insert_record(
                key,
                &indirection_payload(50, 64),
                RecordFlags::INDIRECTION,
                &session,
            )
            .unwrap();

        let mut client = cluster.client(ClientConfig::default());
        assert_eq!(client.read(key), Some(b"survivor-below".to_vec()));
        cluster.shutdown();
    }

    /// The PR 4 residual, fixed: two levels of nesting (a four-process
    /// chain) resolve by following both hops transitively instead of
    /// pending forever.
    #[test]
    fn doubly_nested_indirection_resolves_transitively() {
        let cluster = Cluster::start(ClusterConfig::two_server_test());
        let server = cluster.server(ServerId(0)).unwrap();
        let session = server.store().start_session();
        let key = 9_009u64;

        let tier = Arc::new(ScriptedTier {
            chains: HashMap::from([
                (50, vec![indirection_record(60, 128)]),
                (60, vec![indirection_record(70, 256)]),
                (
                    70,
                    vec![TierRecord {
                        key,
                        flags: 0,
                        value: b"three-hops-away".to_vec(),
                    }],
                ),
            ]),
            fetched: Mutex::new(Vec::new()),
            local: None,
        });
        cluster.set_tier_service(Arc::clone(&tier) as Arc<dyn TierService>);
        server
            .store()
            .insert_record(
                key,
                &indirection_payload(50, 64),
                RecordFlags::INDIRECTION,
                &session,
            )
            .unwrap();

        let mut client = cluster.client(ClientConfig::default());
        assert_eq!(
            client.read(key),
            Some(b"three-hops-away".to_vec()),
            "a doubly nested chain must resolve, not pend"
        );
        assert_eq!(
            server.pending_ops(),
            0,
            "nothing should be parked in the pending set"
        );
        // Every hop of the chain was chased exactly once.
        let fetched = tier.fetched.lock().clone();
        assert_eq!(fetched, vec![50, 60, 70], "fetch trace: {fetched:?}");
        cluster.shutdown();
    }

    /// Nesting past [`MAX_NESTED_HOPS`] — deeper than any realistic
    /// migration sequence, i.e. a corrupted or cyclic chain — still pends:
    /// never a miss, and the walk stops at the cap instead of looping.
    #[test]
    fn nesting_past_the_hop_cap_keeps_the_operation_pending() {
        let cluster = Cluster::start(ClusterConfig::two_server_test());
        let server = cluster.server(ServerId(0)).unwrap();
        let session = server.store().start_session();
        let key = 9_119u64;

        // Five levels of nesting behind the local indirection: the walk may
        // follow MAX_NESTED_HOPS (4) of them, so log 100 stays unreached.
        let tier = Arc::new(ScriptedTier {
            chains: HashMap::from([
                (50, vec![indirection_record(60, 128)]),
                (60, vec![indirection_record(70, 128)]),
                (70, vec![indirection_record(80, 128)]),
                (80, vec![indirection_record(90, 128)]),
                (90, vec![indirection_record(100, 128)]),
                (
                    100,
                    vec![TierRecord {
                        key,
                        flags: 0,
                        value: b"six-hops-away".to_vec(),
                    }],
                ),
            ]),
            fetched: Mutex::new(Vec::new()),
            local: None,
        });
        cluster.set_tier_service(Arc::clone(&tier) as Arc<dyn TierService>);
        server
            .store()
            .insert_record(
                key,
                &indirection_payload(50, 64),
                RecordFlags::INDIRECTION,
                &session,
            )
            .unwrap();

        let mut client = cluster.client(ClientConfig::default());
        let completed = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let flag = Arc::clone(&completed);
        assert!(client.issue_read(key, Box::new(move |_| flag.store(true, Ordering::SeqCst))));
        client.flush();
        let deadline = Instant::now() + Duration::from_millis(500);
        while Instant::now() < deadline {
            client.poll();
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(
            !completed.load(Ordering::SeqCst),
            "a chain nested past the cap must pend, not complete"
        );
        assert!(
            server.pending_ops() > 0,
            "the read should be parked in the pending set"
        );
        let fetched = tier.fetched.lock().clone();
        assert!(
            fetched.contains(&90) && !fetched.contains(&100),
            "the walk should stop at the cap: {fetched:?}"
        );
        cluster.shutdown();
    }

    /// The nested hop can land on a *locally readable* log.  When that local
    /// chain's newest record for the key is a tombstone, the deletion must
    /// win — the older live record below the indirection on the remote chain
    /// must not be resurrected.
    #[test]
    fn nested_hop_tombstone_on_a_local_chain_is_not_resurrected() {
        let cluster = Cluster::start(ClusterConfig::two_server_test());
        let server = cluster.server(ServerId(0)).unwrap();
        let session = server.store().start_session();
        let key = 6_006u64;

        // A tombstone for the key on shared-tier log 60 (the "local" log of
        // this process, as after a range round-trips between servers).
        let local_tier = SharedBlobTier::new(1 << 20);
        let header = shadowfax_hlog::RecordHeader {
            prev: Address::new(0),
            flags: RecordFlags::TOMBSTONE,
            version: 1,
            value_len: 0,
            key,
        };
        let mut bytes = vec![0u8; shadowfax_hlog::RECORD_HEADER_BYTES];
        header.encode_into(&mut bytes);
        local_tier.write_log(LogId(60), 128, &bytes).unwrap();

        let tier = Arc::new(ScriptedTier {
            chains: HashMap::from([(
                50,
                vec![
                    indirection_record(60, 128),
                    // Older than the deletion behind the indirection.
                    TierRecord {
                        key,
                        flags: 0,
                        value: b"pre-delete".to_vec(),
                    },
                ],
            )]),
            fetched: Mutex::new(Vec::new()),
            local: Some((60, local_tier)),
        });
        cluster.set_tier_service(Arc::clone(&tier) as Arc<dyn TierService>);
        server
            .store()
            .insert_record(
                key,
                &indirection_payload(50, 64),
                RecordFlags::INDIRECTION,
                &session,
            )
            .unwrap();

        let mut client = cluster.client(ClientConfig::default());
        assert_eq!(
            client.read(key),
            None,
            "a deleted key must stay deleted, not resurrect its pre-delete value"
        );
        cluster.shutdown();
    }
}
