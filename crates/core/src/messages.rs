//! Server-to-server messages used by the migration protocol (paper §3.3).
//!
//! Client/server traffic reuses the request/reply batch types from
//! `shadowfax-net`.  Migration traffic between the source and target flows
//! over dedicated migration links (the in-process fabric, or TCP via
//! `shadowfax-rpc`) using the messages defined here, mirroring the paper's
//! RPCs: `PrepForTransfer`, `TakeOwnership`, `PushHotRecords` (the sampled
//! hot set), `PushRecordBatch`, `CompleteMigration`, plus a compaction-time
//! hand-off message for records a server no longer owns (paper §3.3.3).
//!
//! Every source→target message is **view-tagged** with the view number the
//! metadata store assigned the target when ownership was remapped, so a
//! target can adopt the new view from whichever message arrives first and
//! reject traffic from a different migration epoch.

use shadowfax_net::WireSize;

use crate::hash_range::HashRange;
use crate::ServerId;

/// One record being shipped from the source to the target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MigratedItem {
    /// A full record (key + value) that was resident in the source's memory.
    Record {
        /// The record key.
        key: u64,
        /// The record value.
        value: Vec<u8>,
    },
    /// An indirection record pointing at the remainder of a hash chain on the
    /// shared storage tier (encoded with
    /// [`IndirectionRecord::encode_value`](crate::IndirectionRecord::encode_value)).
    Indirection {
        /// Hash value identifying the bucket/tag chain the record belongs in.
        representative_hash: u64,
        /// Encoded indirection payload.
        payload: Vec<u8>,
    },
}

impl MigratedItem {
    /// Approximate wire footprint of this item.
    pub fn wire_size(&self) -> usize {
        match self {
            MigratedItem::Record { value, .. } => 16 + value.len(),
            MigratedItem::Indirection { payload, .. } => 16 + payload.len(),
        }
    }
}

/// Messages exchanged between the source and target of a migration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MigrationMsg {
    /// Source → target: ownership transfer is imminent; start pending
    /// requests for the migrating ranges (target moves to its Prepare phase).
    PrepForTransfer {
        /// Migration id assigned by the metadata store.
        migration_id: u64,
        /// The ranges being migrated.
        ranges: Vec<HashRange>,
        /// The source server.
        source: ServerId,
        /// The view the target moved to when ownership was remapped.
        target_view: u64,
    },
    /// Source → target: the source has stopped serving the ranges; the target
    /// owns them now and may begin serving (its Receive phase).  A
    /// [`MigrationMsg::PushHotRecords`] with the sampled hot set follows
    /// immediately on the same (ordered) link.
    TakeOwnership {
        /// Migration id.
        migration_id: u64,
        /// The ranges being migrated.
        ranges: Vec<HashRange>,
        /// The view the metadata store assigned the target at transfer time.
        target_view: u64,
    },
    /// Source → target: the hot records sampled during the source's Sampling
    /// phase, read after the ownership cut so they include every update the
    /// source acknowledged.
    PushHotRecords {
        /// Migration id.
        migration_id: u64,
        /// The target's view for this migration.
        target_view: u64,
        /// Hot records sampled at the source (key, value).
        records: Vec<(u64, Vec<u8>)>,
    },
    /// Source → target: a parallel batch of migrated records / indirection
    /// records collected from one source thread's hash-table region.
    PushRecordBatch {
        /// Migration id.
        migration_id: u64,
        /// The target's view for this migration.
        target_view: u64,
        /// Items in this batch.
        items: Vec<MigratedItem>,
    },
    /// Source → target: every record has been shipped; checkpoint and mark
    /// your side complete at the metadata store.
    CompleteMigration {
        /// Migration id.
        migration_id: u64,
        /// The target's view for this migration.
        target_view: u64,
        /// Total items (records + indirection records) the source sent across
        /// all of its threads' sessions; the target waits until it has
        /// received this many before finalizing.
        total_items: u64,
    },
    /// Target → source: acknowledgement of a control message (keeps the
    /// source's state machine purely asynchronous — it never blocks on these).
    Ack {
        /// Migration id.
        migration_id: u64,
        /// Which phase is being acknowledged.
        phase: MigrationAckPhase,
    },
    /// Compaction hand-off (either direction, outside migrations): the sender
    /// found a record during log compaction whose hash range it no longer
    /// owns; the receiver inserts it unless it already has a newer version
    /// (paper §3.3.3).
    CompactionHandoff {
        /// The record key.
        key: u64,
        /// The record value.
        value: Vec<u8>,
    },
    /// Liveness probe on a migration link (either direction).  The receiver
    /// echoes a [`MigrationMsg::HeartbeatAck`] on the same connection; any
    /// traffic counts as proof of life, heartbeats just guarantee there *is*
    /// traffic during quiet protocol phases.
    Heartbeat {
        /// Migration id the probe belongs to.
        migration_id: u64,
        /// The sender's current serving view (diagnostic; receivers do not
        /// adopt it).
        view: u64,
    },
    /// Echo of a [`MigrationMsg::Heartbeat`].
    HeartbeatAck {
        /// Migration id echoed back.
        migration_id: u64,
        /// The echoing server's current serving view.
        view: u64,
    },
    /// The sender cancelled `migration_id` (its peer died, or an operator
    /// asked): the receiver must drop its in-flight state for the migration,
    /// roll back to its checkpoint, and re-adopt the post-cancellation
    /// ownership map (paper §3.3.1).  The migration id — never reused — is
    /// the replay fence.
    CancelMigration {
        /// The cancelled migration.
        migration_id: u64,
        /// The view the *receiver* was assigned for the cancelled
        /// migration, when the sender knows it (a source relaying to its
        /// target sends the target's assigned view; a target relaying to
        /// its source sends 0).  A receiver holding no in-flight state for
        /// the migration — cancelled before it ever heard of it — adopts
        /// `view + 1` as its serving-view fence, matching the authoritative
        /// store's post-cancellation registration; receivers *with* state
        /// gate on the migration id alone, since their own view can
        /// advance for unrelated concurrent migrations.
        view: u64,
    },
}

/// Which control step an [`MigrationMsg::Ack`] acknowledges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationAckPhase {
    /// Acknowledges `PrepForTransfer`.
    Prepared,
    /// Acknowledges `TransferredOwnership`.
    OwnershipReceived,
    /// Acknowledges `CompleteMigration` (target finished inserting records).
    Completed,
}

impl WireSize for MigrationMsg {
    fn wire_size(&self) -> usize {
        match self {
            MigrationMsg::PrepForTransfer { ranges, .. } => 32 + ranges.len() * 16,
            MigrationMsg::TakeOwnership { ranges, .. } => 24 + ranges.len() * 16,
            MigrationMsg::PushHotRecords { records, .. } => {
                24 + records.iter().map(|(_, v)| 16 + v.len()).sum::<usize>()
            }
            MigrationMsg::PushRecordBatch { items, .. } => {
                24 + items.iter().map(MigratedItem::wire_size).sum::<usize>()
            }
            MigrationMsg::CompleteMigration { .. } => 24,
            MigrationMsg::Ack { .. } => 17,
            MigrationMsg::CompactionHandoff { value, .. } => 16 + value.len(),
            MigrationMsg::Heartbeat { .. }
            | MigrationMsg::HeartbeatAck { .. }
            | MigrationMsg::CancelMigration { .. } => 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_batches_scale_with_payload() {
        let small = MigrationMsg::PushRecordBatch {
            migration_id: 1,
            target_view: 2,
            items: vec![MigratedItem::Record {
                key: 1,
                value: vec![0; 8],
            }],
        };
        let big = MigrationMsg::PushRecordBatch {
            migration_id: 1,
            target_view: 2,
            items: (0..100)
                .map(|k| MigratedItem::Record {
                    key: k,
                    value: vec![0; 256],
                })
                .collect(),
        };
        assert!(big.wire_size() > small.wire_size());
        assert!(big.wire_size() > 100 * 256);
    }

    #[test]
    fn control_messages_are_small() {
        assert!(
            MigrationMsg::CompleteMigration {
                migration_id: 3,
                target_view: 2,
                total_items: 10
            }
            .wire_size()
                < 64
        );
        assert!(
            MigrationMsg::Ack {
                migration_id: 3,
                phase: MigrationAckPhase::Prepared
            }
            .wire_size()
                < 64
        );
    }

    #[test]
    fn hot_record_push_counts_sampled_records() {
        let msg = MigrationMsg::PushHotRecords {
            migration_id: 1,
            target_view: 2,
            records: vec![(1, vec![0u8; 256]), (2, vec![0u8; 256])],
        };
        assert!(msg.wire_size() > 512);
    }
}
