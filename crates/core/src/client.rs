//! The Shadowfax client library (paper §3.1.1).
//!
//! Each client thread owns one [`ShadowfaxClient`].  The library keeps a
//! cached copy of the cluster's ownership mappings (refreshed from the
//! metadata store on demand), one pipelined session per server, and issues
//! fully asynchronous operations: `issue_*` buffers the operation with a
//! completion callback and returns immediately; [`ShadowfaxClient::poll`]
//! drains replies, runs callbacks, and re-routes any operations that were
//! parked by view-mismatch rejections after refreshing the ownership cache.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use shadowfax_faster::KeyHash;
use shadowfax_net::{ClientSession, KvRequest, KvResponse, SessionConfig, Transport};

use crate::config::ClientConfig;
use crate::meta::{MetadataStore, OwnershipSnapshot};
use crate::server::KvNetwork;
use crate::ServerId;

/// Callback type used by the asynchronous operation API.
pub type OpCallback = Box<dyn FnOnce(KvResponse) + Send>;

/// Counters kept by a client instance.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ClientStats {
    /// Operations issued.
    pub issued: u64,
    /// Operations completed (callback executed).
    pub completed: u64,
    /// Ownership-cache refreshes triggered by batch rejections.
    pub ownership_refreshes: u64,
    /// Operations re-routed after a rejection.
    pub rerouted: u64,
}

/// A per-thread Shadowfax client.
///
/// The client is written against the [`Transport`] trait, so the same
/// ownership-caching, batching, and re-routing logic runs over the simulated
/// fabric (tests, benchmarks) and over real sockets (`shadowfax-rpc`).
pub struct ShadowfaxClient {
    config: ClientConfig,
    meta: Arc<MetadataStore>,
    transport: Arc<dyn Transport>,
    ownership: OwnershipSnapshot,
    sessions: HashMap<ServerId, ClientSession>,
    /// Operations whose re-route attempt failed (ownership momentarily
    /// unknown, or a session could not be opened); retried on every poll so
    /// their callbacks are never silently dropped.
    pending_reroute: Vec<(KvRequest, OpCallback)>,
    completed: Arc<AtomicU64>,
    stats: ClientStats,
}

impl std::fmt::Debug for ShadowfaxClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShadowfaxClient")
            .field("thread", &self.config.thread_id)
            .field("sessions", &self.sessions.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl ShadowfaxClient {
    /// Creates a client bound to the given metadata store and simulated
    /// fabric.
    pub fn new(config: ClientConfig, meta: Arc<MetadataStore>, net: Arc<KvNetwork>) -> Self {
        Self::with_transport(config, meta, net)
    }

    /// Creates a client over an arbitrary [`Transport`] implementation.
    pub fn with_transport(
        config: ClientConfig,
        meta: Arc<MetadataStore>,
        transport: Arc<dyn Transport>,
    ) -> Self {
        let ownership = meta.snapshot();
        ShadowfaxClient {
            config,
            meta,
            transport,
            ownership,
            sessions: HashMap::new(),
            pending_reroute: Vec::new(),
            completed: Arc::new(AtomicU64::new(0)),
            stats: ClientStats::default(),
        }
    }

    /// Client counters.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Operations whose callbacks have run (shared counter usable from
    /// callbacks created by the convenience helpers).
    pub fn completed_ops(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Operations issued but not yet completed across all sessions.
    pub fn outstanding_ops(&self) -> usize {
        self.sessions
            .values()
            .map(|s| s.outstanding_ops())
            .sum::<usize>()
            + self.pending_reroute.len()
    }

    /// Refreshes the cached ownership mappings from the metadata store.
    pub fn refresh_ownership(&mut self) {
        self.ownership = self.meta.snapshot();
        self.stats.ownership_refreshes += 1;
        // Update the view stamped by existing sessions.
        for (server, session) in self.sessions.iter_mut() {
            if let Some(m) = self.ownership.server(*server) {
                session.set_view(m.view);
            }
        }
    }

    fn owner_for_key(&self, key: u64) -> Option<ServerId> {
        let hash = KeyHash::of(key).raw();
        self.ownership.owner_of(hash).map(|(id, _)| id)
    }

    fn session_for(&mut self, server: ServerId) -> Option<&mut ClientSession> {
        if !self.sessions.contains_key(&server) {
            let meta = self.ownership.server(server)?.clone();
            let thread = self.config.thread_id % meta.threads.max(1);
            let addr = format!("{}/t{}", meta.address, thread);
            let link = self.transport.connect_link(&addr).ok()?;
            let session = ClientSession::from_link(link, meta.view, self.config.session);
            self.sessions.insert(server, session);
        }
        self.sessions.get_mut(&server)
    }

    /// Issues an arbitrary request with a completion callback.  Returns
    /// `false` if no server currently owns the key's hash (the caller should
    /// refresh ownership and retry).
    pub fn issue(&mut self, request: KvRequest, callback: OpCallback) -> bool {
        self.try_issue(request, callback).is_none()
    }

    /// Like [`ShadowfaxClient::issue`], but hands the operation back instead
    /// of dropping it when no route exists.
    fn try_issue(
        &mut self,
        request: KvRequest,
        callback: OpCallback,
    ) -> Option<(KvRequest, OpCallback)> {
        let Some(owner) = self.owner_for_key(request.key()) else {
            return Some((request, callback));
        };
        if self.session_for(owner).is_none() {
            return Some((request, callback));
        }
        self.stats.issued += 1;
        let session = self.sessions.get_mut(&owner).expect("session just ensured");
        session.issue(request, callback);
        None
    }

    /// Issues an asynchronous read.
    pub fn issue_read(&mut self, key: u64, callback: OpCallback) -> bool {
        self.issue(KvRequest::Read { key }, callback)
    }

    /// Issues an asynchronous upsert.
    pub fn issue_upsert(&mut self, key: u64, value: Vec<u8>, callback: OpCallback) -> bool {
        self.issue(KvRequest::Upsert { key, value }, callback)
    }

    /// Issues an asynchronous read-modify-write (counter increment).
    pub fn issue_rmw(&mut self, key: u64, delta: u64, callback: OpCallback) -> bool {
        self.issue(KvRequest::RmwAdd { key, delta }, callback)
    }

    /// Flushes partially filled batches on every session.  Transport
    /// failures are left recorded on the session and surface as dead links
    /// cleaned up by [`ShadowfaxClient::poll`].
    pub fn flush(&mut self) {
        for session in self.sessions.values_mut() {
            let _ = session.flush();
        }
    }

    /// Drains replies, runs callbacks, refreshes ownership after rejections,
    /// and re-routes parked operations.  Returns the number of operations
    /// completed by this call.
    ///
    /// Sessions whose link has failed (a server process went away) are torn
    /// down; their parked operations are re-routed with everything else after
    /// the ownership refresh.
    pub fn poll(&mut self) -> usize {
        let mut completed = 0;
        let mut needs_refresh = false;
        let mut dead: Vec<ServerId> = Vec::new();
        for (server, session) in self.sessions.iter_mut() {
            match session.poll() {
                Ok(n) => completed += n,
                Err(_) => {
                    needs_refresh = true;
                    dead.push(*server);
                }
            }
            if session.stale_view().is_some() {
                needs_refresh = true;
            }
        }
        // Salvage what can safely be re-routed from dead sessions: parked
        // and never-sent operations survive; batches already in flight on
        // the broken link have unknown outcomes and are lost with it.
        let mut orphans: Vec<(KvRequest, OpCallback)> = Vec::new();
        for server in dead {
            if let Some(mut session) = self.sessions.remove(&server) {
                orphans.extend(session.take_unsent());
            }
        }
        self.stats.completed += completed as u64;
        if needs_refresh {
            self.refresh_ownership();
            // Collect parked operations and re-route them: ownership may have
            // moved them to a different server entirely.
            let mut parked: Vec<(KvRequest, OpCallback)> = self
                .sessions
                .values_mut()
                .flat_map(|s| s.take_parked())
                .collect();
            parked.append(&mut orphans);
            for (req, cb) in parked {
                self.stats.rerouted += 1;
                self.stats.issued = self.stats.issued.saturating_sub(1); // re-issue, not a new op
                if let Some(op) = self.try_issue(req, cb) {
                    // Ownership is momentarily unknown; hold the operation
                    // and retry on the next poll.
                    self.pending_reroute.push(op);
                }
            }
            self.flush();
        } else if !self.pending_reroute.is_empty() {
            self.refresh_ownership();
        }
        // Retry operations whose earlier re-route found no owner.
        if !self.pending_reroute.is_empty() {
            let retry = std::mem::take(&mut self.pending_reroute);
            for (req, cb) in retry {
                if let Some(op) = self.try_issue(req, cb) {
                    self.pending_reroute.push(op);
                }
            }
            self.flush();
        }
        completed
    }

    /// Issues an operation and spins (polling) until its reply arrives.
    /// Convenience for examples, tests, and load phases — not the hot path.
    pub fn execute_sync(&mut self, request: KvRequest) -> KvResponse {
        use parking_lot::Mutex;
        let slot: Arc<Mutex<Option<KvResponse>>> = Arc::new(Mutex::new(None));
        let slot2 = Arc::clone(&slot);
        let completed = Arc::clone(&self.completed);
        let issued = self.issue(
            request,
            Box::new(move |resp| {
                completed.fetch_add(1, Ordering::Relaxed);
                *slot2.lock() = Some(resp);
            }),
        );
        if !issued {
            return KvResponse::Error("no owner for key".into());
        }
        self.flush();
        let start = std::time::Instant::now();
        loop {
            self.poll();
            if let Some(resp) = slot.lock().take() {
                return resp;
            }
            if start.elapsed() > std::time::Duration::from_secs(30) {
                return KvResponse::Error("timed out waiting for reply".into());
            }
            std::thread::yield_now();
        }
    }

    /// Synchronously reads a key.
    pub fn read(&mut self, key: u64) -> Option<Vec<u8>> {
        match self.execute_sync(KvRequest::Read { key }) {
            KvResponse::Value(v) => v,
            _ => None,
        }
    }

    /// Synchronously writes a key.
    pub fn upsert(&mut self, key: u64, value: Vec<u8>) -> bool {
        matches!(
            self.execute_sync(KvRequest::Upsert { key, value }),
            KvResponse::Ok
        )
    }

    /// Synchronously increments a key's counter, returning the new value.
    pub fn rmw_add(&mut self, key: u64, delta: u64) -> Option<u64> {
        match self.execute_sync(KvRequest::RmwAdd { key, delta }) {
            KvResponse::Counter(c) => Some(c),
            _ => None,
        }
    }

    /// Waits until every outstanding operation has completed (or the timeout
    /// expires).  Returns `true` if the client became quiescent.
    pub fn drain(&mut self, timeout: std::time::Duration) -> bool {
        let start = std::time::Instant::now();
        self.flush();
        while self.outstanding_ops() > 0 {
            self.poll();
            self.flush();
            if start.elapsed() > timeout {
                return false;
            }
            std::thread::yield_now();
        }
        true
    }

    /// The session configuration in force.
    pub fn session_config(&self) -> SessionConfig {
        self.config.session
    }
}
