//! The metadata-service seam: one trait over the handful of linearizable
//! operations the rest of the system needs from the metadata store, with
//! two implementations.
//!
//! * [`MetadataStore`] — the in-process store every deployment starts
//!   from.  Single-process clusters use it directly and never pay for
//!   replication.
//! * The RPC crate's `ReplicatedMetadata` — wraps the local store in a
//!   broker/coordinator deployment: reads answer from the continuously
//!   merged local replica, mutations require a reachable broker and fail
//!   with the typed [`MetaError::CoordinatorUnavailable`] between a broker
//!   failure and the next promotion.
//!
//! The trait is object-safe so control planes can hold
//! `Arc<dyn MetadataService>` and swap implementations per deployment.

use crate::hash_range::HashRange;
use crate::meta::{
    MergeOutcome, MetaError, MetaReplica, MetadataStore, MigrationDep, OwnershipSnapshot,
};
use crate::ServerId;

/// The linearizable metadata operations the protocol needs (paper §3), as
/// a seam between the in-process store and a replicated deployment.
pub trait MetadataService: Send + Sync {
    /// A consistent snapshot of all ownership mappings.
    fn snapshot(&self) -> OwnershipSnapshot;

    /// The current view number of `id`.
    fn view_of(&self, id: ServerId) -> Option<u64>;

    /// The `(server, view)` owning `hash`, if any.
    fn owner_of(&self, hash: u64) -> Option<(ServerId, u64)>;

    /// The cluster epoch (bumped on every mutation).
    fn epoch(&self) -> u64;

    /// Atomically moves `ranges` from `source` to `target`; see
    /// [`MetadataStore::transfer_ownership`].
    fn transfer_ownership(
        &self,
        source: ServerId,
        target: ServerId,
        ranges: &[HashRange],
    ) -> Result<(u64, u64, u64), MetaError>;

    /// Marks one side of a migration complete.
    fn mark_complete(&self, migration_id: u64, server: ServerId) -> Result<bool, MetaError>;

    /// Cancels an in-flight migration, rolling ownership back to the source.
    fn cancel_migration(&self, migration_id: u64) -> Result<MigrationDep, MetaError>;

    /// The state of migration `id`; see [`MetadataStore::migration_state`].
    fn migration_state(&self, id: u64) -> Result<Option<MigrationDep>, MetaError>;

    /// Number of unresolved migration dependencies.
    fn pending_migrations(&self) -> usize;

    /// Any unresolved dependency involving `server`.
    fn pending_dependency_for(&self, server: ServerId) -> Option<MigrationDep>;

    /// Exports an epoch-tagged copy of the store for replication.
    fn replica(&self) -> MetaReplica;

    /// Merges a replica exported by another process.
    fn merge_replica(&self, replica: &MetaReplica) -> MergeOutcome;
}

impl MetadataService for MetadataStore {
    fn snapshot(&self) -> OwnershipSnapshot {
        MetadataStore::snapshot(self)
    }

    fn view_of(&self, id: ServerId) -> Option<u64> {
        MetadataStore::view_of(self, id)
    }

    fn owner_of(&self, hash: u64) -> Option<(ServerId, u64)> {
        MetadataStore::owner_of(self, hash)
    }

    fn epoch(&self) -> u64 {
        MetadataStore::epoch(self)
    }

    fn transfer_ownership(
        &self,
        source: ServerId,
        target: ServerId,
        ranges: &[HashRange],
    ) -> Result<(u64, u64, u64), MetaError> {
        MetadataStore::transfer_ownership(self, source, target, ranges)
    }

    fn mark_complete(&self, migration_id: u64, server: ServerId) -> Result<bool, MetaError> {
        MetadataStore::mark_complete(self, migration_id, server)
    }

    fn cancel_migration(&self, migration_id: u64) -> Result<MigrationDep, MetaError> {
        MetadataStore::cancel_migration(self, migration_id)
    }

    fn migration_state(&self, id: u64) -> Result<Option<MigrationDep>, MetaError> {
        MetadataStore::migration_state(self, id)
    }

    fn pending_migrations(&self) -> usize {
        MetadataStore::pending_migrations(self)
    }

    fn pending_dependency_for(&self, server: ServerId) -> Option<MigrationDep> {
        MetadataStore::pending_dependency_for(self, server)
    }

    fn replica(&self) -> MetaReplica {
        MetadataStore::replica(self)
    }

    fn merge_replica(&self, replica: &MetaReplica) -> MergeOutcome {
        MetadataStore::merge_replica(self, replica)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash_range::{partition_space, RangeSet};
    use std::sync::Arc;

    #[test]
    fn local_store_serves_through_the_seam() {
        let store = MetadataStore::new();
        let parts = partition_space(2);
        store.register_server(ServerId(0), "sv0", 2, RangeSet::from_ranges([parts[0]]));
        store.register_server(ServerId(1), "sv1", 2, RangeSet::from_ranges([parts[1]]));
        let svc: Arc<dyn MetadataService> = store;
        assert_eq!(svc.owner_of(0).unwrap().0, ServerId(0));
        let moved = parts[0].take_fraction(0.1);
        let (id, ..) = svc
            .transfer_ownership(ServerId(0), ServerId(1), &[moved])
            .unwrap();
        assert_eq!(svc.pending_migrations(), 1);
        let dep = svc.cancel_migration(id).unwrap();
        assert!(dep.cancelled);
        assert!(svc.epoch() > 0);
        let replica = svc.replica();
        assert_eq!(replica.cancelled.len(), 1);
    }
}
