//! Cluster-wide initial ownership layouts.
//!
//! The paper's deployments assume every server owns a slice of the hash
//! space from the moment it boots; migrations then *rebalance* load between
//! any pair of owners.  [`ClusterLayout`] makes that first assignment a
//! first-class, validated object: it is resolved over the set of **global**
//! server ids (the servers a process hosts plus every peer registered from
//! other processes), so every process in a multi-process deployment derives
//! the same ownership map from the same configuration.
//!
//! Three layouts exist:
//!
//! * [`ClusterLayout::ScaleOut`] — server 0 owns the full space and every
//!   other id idles (the Figure 10 scale-out experiments, and the historical
//!   default).
//! * [`ClusterLayout::Partitioned`] — the space is split evenly across every
//!   registered global id, in id order.
//! * [`ClusterLayout::Explicit`] — per-id range lists, spelled out.
//!
//! Individual peers may also pin their ranges explicitly
//! ([`PeerOwns::Explicit`], the `--peer ...,owns=0x...-0x...` syntax); an
//! explicit declaration replaces whatever the layout computed for that id.
//! However the final map is produced, [`ClusterLayout::resolve`] validates
//! it: ids must be unique, ranges must not overlap, and the union must cover
//! the full hash space — violations surface as typed [`LayoutError`]s, never
//! panics.
//!
//! This module also owns the *textual* forms used by `shadowfax-server`
//! (`--layout`, `--peer`): parsing is strict and round-trips with the
//! `Display` impls, which the layout property tests fuzz.

use std::collections::BTreeMap;

use crate::hash_range::{partition_space_among, HashRange, RangeSet};
use crate::ServerId;

/// How the initial ownership of the hash space is assigned across the
/// cluster's global server ids.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum ClusterLayout {
    /// Server 0 owns the full hash space; every other server starts idle as
    /// a scale-out target (the historical default).
    #[default]
    ScaleOut,
    /// The full hash space split evenly across every registered global id
    /// (local servers and peers alike), in ascending id order.
    Partitioned,
    /// Explicit per-id range lists.  Ids absent from the list start idle;
    /// the listed ranges must be disjoint and cover the full space once
    /// combined with any per-peer declarations.
    Explicit(Vec<(ServerId, RangeSet)>),
}

/// What a peer declared about its initial ownership (the `owns=` field of a
/// `--peer` spec).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum PeerOwns {
    /// Let the cluster layout assign the peer's ranges (the default, and
    /// the only sensible choice under [`ClusterLayout::Partitioned`]).
    #[default]
    Auto,
    /// The peer's ranges, pinned explicitly.  `full` and `none` are
    /// shorthands for the full space and the empty set.
    Explicit(RangeSet),
}

/// Why a layout failed to parse or resolve.
///
/// Non-exhaustive so new failure modes can be added without breaking
/// downstream matches; Display phrasing is lowercase-first with no
/// trailing period (audited by the rpc crate's error-surface test).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LayoutError {
    /// The same global id was registered twice (e.g. a peer colliding with
    /// a local server).
    DuplicateServer(ServerId),
    /// An explicit assignment names an id that is neither hosted locally
    /// nor registered as a peer.
    UnknownServer(ServerId),
    /// An id appears more than once in an explicit assignment list.
    ConflictingAssignment(ServerId),
    /// Two owners claim overlapping slices of the hash space.
    Overlap {
        /// One claimant.
        a: ServerId,
        /// The other claimant.
        b: ServerId,
        /// Where their claims collide.
        range: HashRange,
    },
    /// Nobody owns `[start, end)`.
    Gap {
        /// Start of the unowned hole.
        start: u64,
        /// End of the unowned hole.
        end: u64,
    },
    /// The cluster has no servers at all.
    NoServers,
    /// A textual spec failed to parse.
    Spec {
        /// What was being parsed (`"--layout"`, `"--peer"`, ...).
        context: &'static str,
        /// The offending input (or the part of it that failed).
        input: String,
    },
}

impl std::fmt::Display for LayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LayoutError::DuplicateServer(id) => {
                write!(f, "server id {} registered twice", id.0)
            }
            LayoutError::UnknownServer(id) => write!(
                f,
                "layout assigns ranges to server id {} but no such server is registered",
                id.0
            ),
            LayoutError::ConflictingAssignment(id) => {
                write!(f, "server id {} assigned ranges more than once", id.0)
            }
            LayoutError::Overlap { a, b, range } => write!(
                f,
                "servers {} and {} both claim {range}",
                a.0.min(b.0),
                a.0.max(b.0)
            ),
            LayoutError::Gap { start, end } => {
                write!(f, "no server owns [{start:#x}, {end:#x})")
            }
            LayoutError::NoServers => f.write_str("the layout has no servers"),
            LayoutError::Spec { context, input } => {
                write!(f, "malformed {context} spec {input:?}")
            }
        }
    }
}

impl std::error::Error for LayoutError {}

impl ClusterLayout {
    /// Resolves the layout over the cluster's global membership into one
    /// [`RangeSet`] per id.  `members` pairs every global id (local servers
    /// and peers) with its ownership declaration; [`PeerOwns::Explicit`]
    /// declarations replace whatever the layout computed for that id.
    ///
    /// # Errors
    ///
    /// Typed [`LayoutError`]s for duplicate ids, assignments to unknown
    /// ids, overlapping claims, and coverage gaps — the resolved map always
    /// covers the full hash space with disjoint ranges.
    pub fn resolve(
        &self,
        members: &[(ServerId, PeerOwns)],
    ) -> Result<BTreeMap<ServerId, RangeSet>, LayoutError> {
        if members.is_empty() {
            return Err(LayoutError::NoServers);
        }
        let mut assignment: BTreeMap<ServerId, RangeSet> = BTreeMap::new();
        for (id, _) in members {
            if assignment.insert(*id, RangeSet::empty()).is_some() {
                return Err(LayoutError::DuplicateServer(*id));
            }
        }
        match self {
            ClusterLayout::ScaleOut => {
                if let Some(owned) = assignment.get_mut(&ServerId(0)) {
                    *owned = RangeSet::full();
                }
                // No server 0 anywhere: the coverage check below reports
                // the hole as a typed Gap.
            }
            ClusterLayout::Partitioned => {
                let ids: Vec<ServerId> = assignment.keys().copied().collect();
                for (id, part) in partition_space_among(&ids) {
                    assignment.insert(id, RangeSet::from_ranges([part]));
                }
            }
            ClusterLayout::Explicit(assigned) => {
                let mut seen = Vec::new();
                for (id, ranges) in assigned {
                    if seen.contains(id) {
                        return Err(LayoutError::ConflictingAssignment(*id));
                    }
                    seen.push(*id);
                    match assignment.get_mut(id) {
                        Some(owned) => *owned = ranges.clone(),
                        None => return Err(LayoutError::UnknownServer(*id)),
                    }
                }
            }
        }
        // Explicit per-member declarations win over the computed layout.
        for (id, owns) in members {
            if let PeerOwns::Explicit(ranges) = owns {
                assignment.insert(*id, ranges.clone());
            }
        }
        validate_partition(&assignment)?;
        Ok(assignment)
    }

    /// Parses a `--layout` spec: `scale-out`, `partitioned`, or an explicit
    /// assignment list `0=0x0-0x8000000000000000,1=0x8000000000000000-0xffffffffffffffff`
    /// (multiple ranges per id joined with `+`; `none` marks an id idle).
    pub fn from_spec(spec: &str) -> Result<Self, LayoutError> {
        let bad = |input: &str| LayoutError::Spec {
            context: "--layout",
            input: input.to_string(),
        };
        match spec {
            "scale-out" | "scaleout" => return Ok(ClusterLayout::ScaleOut),
            "partitioned" | "balanced" => return Ok(ClusterLayout::Partitioned),
            "" => return Err(bad(spec)),
            _ => {}
        }
        let mut assigned = Vec::new();
        for field in spec.split(',') {
            let (id, ranges) = field.split_once('=').ok_or_else(|| bad(field))?;
            let id: u32 = id.parse().map_err(|_| bad(field))?;
            let ranges = parse_ranges_spec(ranges, "--layout")?;
            assigned.push((ServerId(id), ranges));
        }
        Ok(ClusterLayout::Explicit(assigned))
    }
}

impl std::fmt::Display for ClusterLayout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterLayout::ScaleOut => f.write_str("scale-out"),
            ClusterLayout::Partitioned => f.write_str("partitioned"),
            ClusterLayout::Explicit(assigned) => {
                for (i, (id, ranges)) in assigned.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}={}", id.0, format_ranges_spec(ranges))?;
                }
                Ok(())
            }
        }
    }
}

impl PeerOwns {
    /// The explicitly declared ranges, if any.
    pub fn explicit(&self) -> Option<&RangeSet> {
        match self {
            PeerOwns::Auto => None,
            PeerOwns::Explicit(ranges) => Some(ranges),
        }
    }

    /// Parses an `owns=` field: `auto`, `full`, `none`, or a `+`-joined
    /// range list (`0x0-0x7fff+0xc000-0xffff`).
    pub fn from_spec(spec: &str) -> Result<Self, LayoutError> {
        Ok(match spec {
            "auto" => PeerOwns::Auto,
            "full" => PeerOwns::Explicit(RangeSet::full()),
            "none" => PeerOwns::Explicit(RangeSet::empty()),
            _ => PeerOwns::Explicit(parse_ranges_spec(spec, "--peer owns")?),
        })
    }
}

impl std::fmt::Display for PeerOwns {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PeerOwns::Auto => f.write_str("auto"),
            PeerOwns::Explicit(ranges) if ranges.is_empty() => f.write_str("none"),
            PeerOwns::Explicit(ranges) => f.write_str(&format_ranges_spec(ranges)),
        }
    }
}

/// Parses a `+`-joined list of `START-END` hash ranges (hex, `0x` prefix
/// optional; `END` exclusive, with `0xffffffffffffffff` meaning "to the
/// top").  `none` is the empty set.  Rejects inverted and empty ranges.
pub fn parse_ranges_spec(spec: &str, context: &'static str) -> Result<RangeSet, LayoutError> {
    let bad = |input: &str| LayoutError::Spec {
        context,
        input: input.to_string(),
    };
    if spec == "none" {
        return Ok(RangeSet::empty());
    }
    let mut ranges = Vec::new();
    for part in spec.split('+') {
        let (start, end) = part.split_once('-').ok_or_else(|| bad(part))?;
        let parse_hex = |s: &str| -> Result<u64, LayoutError> {
            let digits = s.strip_prefix("0x").unwrap_or(s);
            if digits.is_empty() {
                return Err(bad(part));
            }
            u64::from_str_radix(digits, 16).map_err(|_| bad(part))
        };
        let start = parse_hex(start)?;
        let end = parse_hex(end)?;
        if start >= end {
            return Err(bad(part));
        }
        ranges.push(HashRange { start, end });
    }
    Ok(RangeSet::from_ranges(ranges))
}

/// The canonical textual form of a range set (inverse of
/// [`parse_ranges_spec`]): `0x0-0x7fff+0xc000-0xffff`, or `none` when
/// empty.
pub fn format_ranges_spec(ranges: &RangeSet) -> String {
    if ranges.is_empty() {
        return "none".to_string();
    }
    ranges
        .ranges()
        .iter()
        .map(|r| format!("{:#x}-{:#x}", r.start, r.end))
        .collect::<Vec<_>>()
        .join("+")
}

/// Parses a `--peer` spec, e.g.
/// `id=1,addr=127.0.0.1:4871,threads=2,owns=0x0-0x7fff+0xc000-0xffff`.
/// `id` and `addr` are required; `threads` defaults to 2 and `owns` to
/// `auto` (the cluster layout assigns the peer's ranges).
pub fn parse_peer_spec(spec: &str) -> Result<crate::cluster::PeerServer, LayoutError> {
    let bad = |input: &str| LayoutError::Spec {
        context: "--peer",
        input: input.to_string(),
    };
    let mut id = None;
    let mut addr = None;
    let mut threads = 2usize;
    let mut owns = PeerOwns::Auto;
    for field in spec.split(',') {
        let (key, value) = field.split_once('=').ok_or_else(|| bad(field))?;
        match key {
            "id" => id = Some(value.parse::<u32>().map_err(|_| bad(field))?),
            "addr" if !value.is_empty() => addr = Some(value.to_string()),
            "threads" => {
                threads = value.parse().map_err(|_| bad(field))?;
                if threads == 0 {
                    return Err(bad(field));
                }
            }
            "owns" => owns = PeerOwns::from_spec(value)?,
            _ => return Err(bad(field)),
        }
    }
    Ok(crate::cluster::PeerServer {
        id: ServerId(id.ok_or_else(|| bad(spec))?),
        address: addr.ok_or_else(|| bad(spec))?,
        threads,
        owns,
    })
}

/// Checks that `assignment` tiles the full hash space: no two ids claim
/// overlapping ranges and no hash value is left unowned.
pub fn validate_partition(assignment: &BTreeMap<ServerId, RangeSet>) -> Result<(), LayoutError> {
    let mut claims: Vec<(u64, u64, ServerId)> = Vec::new();
    for (id, owned) in assignment {
        for r in owned.ranges() {
            claims.push((r.start, r.end, *id));
        }
    }
    claims.sort_unstable();
    let mut cursor = 0u64;
    let mut last_owner: Option<ServerId> = None;
    for (start, end, id) in claims {
        match start.cmp(&cursor) {
            std::cmp::Ordering::Less => {
                return Err(LayoutError::Overlap {
                    a: last_owner.unwrap_or(id),
                    b: id,
                    range: HashRange::new(start, cursor.min(end)),
                });
            }
            std::cmp::Ordering::Greater => {
                return Err(LayoutError::Gap {
                    start: cursor,
                    end: start,
                });
            }
            std::cmp::Ordering::Equal => {}
        }
        cursor = end;
        last_owner = Some(id);
    }
    if cursor != u64::MAX {
        return Err(LayoutError::Gap {
            start: cursor,
            end: u64::MAX,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn auto_members(ids: &[u32]) -> Vec<(ServerId, PeerOwns)> {
        ids.iter()
            .map(|&id| (ServerId(id), PeerOwns::Auto))
            .collect()
    }

    #[test]
    fn scale_out_gives_everything_to_server_zero() {
        let map = ClusterLayout::ScaleOut
            .resolve(&auto_members(&[0, 1, 2]))
            .unwrap();
        assert_eq!(map[&ServerId(0)], RangeSet::full());
        assert!(map[&ServerId(1)].is_empty());
        assert!(map[&ServerId(2)].is_empty());
    }

    #[test]
    fn scale_out_without_server_zero_is_a_gap() {
        let err = ClusterLayout::ScaleOut
            .resolve(&auto_members(&[1, 2]))
            .unwrap_err();
        assert_eq!(
            err,
            LayoutError::Gap {
                start: 0,
                end: u64::MAX
            }
        );
    }

    #[test]
    fn partitioned_splits_across_global_ids_in_id_order() {
        // Ids out of order and non-contiguous: the split follows sorted ids.
        let map = ClusterLayout::Partitioned
            .resolve(&auto_members(&[7, 0, 3]))
            .unwrap();
        assert_eq!(map.len(), 3);
        let r0 = map[&ServerId(0)].ranges()[0];
        let r3 = map[&ServerId(3)].ranges()[0];
        let r7 = map[&ServerId(7)].ranges()[0];
        assert_eq!(r0.start, 0);
        assert_eq!(r0.end, r3.start);
        assert_eq!(r3.end, r7.start);
        assert_eq!(r7.end, u64::MAX);
    }

    #[test]
    fn explicit_peer_declaration_overrides_the_layout() {
        // Partitioned over {0, 1}, but peer 1 pins the top three quarters.
        let cut = u64::MAX / 4;
        let members = vec![
            (
                ServerId(0),
                PeerOwns::Explicit(RangeSet::from_ranges([HashRange::new(0, cut)])),
            ),
            (
                ServerId(1),
                PeerOwns::Explicit(RangeSet::from_ranges([HashRange::new(cut, u64::MAX)])),
            ),
        ];
        let map = ClusterLayout::Partitioned.resolve(&members).unwrap();
        assert_eq!(map[&ServerId(0)].ranges(), &[HashRange::new(0, cut)]);
        assert_eq!(map[&ServerId(1)].ranges(), &[HashRange::new(cut, u64::MAX)]);
    }

    #[test]
    fn overlap_and_gap_are_typed_errors() {
        let cut = 1u64 << 63;
        let overlap = ClusterLayout::Explicit(vec![
            (
                ServerId(0),
                RangeSet::from_ranges([HashRange::new(0, cut + 10)]),
            ),
            (
                ServerId(1),
                RangeSet::from_ranges([HashRange::new(cut, u64::MAX)]),
            ),
        ])
        .resolve(&auto_members(&[0, 1]))
        .unwrap_err();
        assert!(matches!(overlap, LayoutError::Overlap { .. }), "{overlap}");

        let gap = ClusterLayout::Explicit(vec![
            (ServerId(0), RangeSet::from_ranges([HashRange::new(0, cut)])),
            (
                ServerId(1),
                RangeSet::from_ranges([HashRange::new(cut + 10, u64::MAX)]),
            ),
        ])
        .resolve(&auto_members(&[0, 1]))
        .unwrap_err();
        assert_eq!(
            gap,
            LayoutError::Gap {
                start: cut,
                end: cut + 10
            }
        );
    }

    #[test]
    fn duplicate_and_unknown_ids_are_typed_errors() {
        assert_eq!(
            ClusterLayout::ScaleOut
                .resolve(&auto_members(&[0, 0]))
                .unwrap_err(),
            LayoutError::DuplicateServer(ServerId(0))
        );
        assert_eq!(
            ClusterLayout::Explicit(vec![(ServerId(9), RangeSet::full())])
                .resolve(&auto_members(&[0]))
                .unwrap_err(),
            LayoutError::UnknownServer(ServerId(9))
        );
        assert_eq!(
            ClusterLayout::Explicit(vec![
                (ServerId(0), RangeSet::full()),
                (ServerId(0), RangeSet::full())
            ])
            .resolve(&auto_members(&[0]))
            .unwrap_err(),
            LayoutError::ConflictingAssignment(ServerId(0))
        );
        assert_eq!(
            ClusterLayout::ScaleOut.resolve(&[]).unwrap_err(),
            LayoutError::NoServers
        );
    }

    #[test]
    fn layout_specs_parse_and_roundtrip() {
        assert_eq!(
            ClusterLayout::from_spec("scale-out").unwrap(),
            ClusterLayout::ScaleOut
        );
        assert_eq!(
            ClusterLayout::from_spec("partitioned").unwrap(),
            ClusterLayout::Partitioned
        );
        let explicit = ClusterLayout::from_spec(
            "0=0x0-0x8000000000000000,1=0x8000000000000000-0xffffffffffffffff",
        )
        .unwrap();
        match &explicit {
            ClusterLayout::Explicit(assigned) => {
                assert_eq!(assigned.len(), 2);
                assert_eq!(assigned[0].0, ServerId(0));
                assert_eq!(assigned[0].1.ranges(), &[HashRange::new(0, 1 << 63)]);
            }
            other => panic!("expected Explicit, got {other:?}"),
        }
        for layout in [
            ClusterLayout::ScaleOut,
            ClusterLayout::Partitioned,
            explicit,
        ] {
            assert_eq!(
                ClusterLayout::from_spec(&layout.to_string()).unwrap(),
                layout
            );
        }
    }

    #[test]
    fn garbage_specs_are_rejected_without_panicking() {
        for bad in [
            "",
            "bogus",
            "0=",
            "0=0x10-0x5",  // inverted
            "0=0x10-0x10", // empty
            "0=10..20",    // wrong separator
            "0=0x-0x5",    // no digits
            "x=0x0-0x5",   // bad id
            "0=0x0-0xzz",  // bad hex
            "0=0x0-0x5,,", // empty field
            "0:0x0-0x5",   // wrong assignment separator
        ] {
            assert!(
                matches!(ClusterLayout::from_spec(bad), Err(LayoutError::Spec { .. })),
                "spec {bad:?} was not rejected"
            );
        }
        for bad in ["", "garbage", "0x5-0x1", "0x1+0x5"] {
            assert!(
                PeerOwns::from_spec(bad).is_err(),
                "owns spec {bad:?} was not rejected"
            );
        }
    }

    #[test]
    fn peer_specs_parse_with_defaults_and_reject_garbage() {
        let peer = parse_peer_spec("id=3,addr=127.0.0.1:4871").unwrap();
        assert_eq!(peer.id, ServerId(3));
        assert_eq!(peer.address, "127.0.0.1:4871");
        assert_eq!(peer.threads, 2);
        assert_eq!(peer.owns, PeerOwns::Auto);

        let peer = parse_peer_spec("id=1,addr=h:1,threads=4,owns=0x0-0x7fff").unwrap();
        assert_eq!(peer.threads, 4);
        assert_eq!(
            peer.owns,
            PeerOwns::Explicit(RangeSet::from_ranges([HashRange::new(0, 0x7fff)]))
        );

        for bad in [
            "",
            "id=1",                      // missing addr
            "addr=h:1",                  // missing id
            "id=x,addr=h:1",             // bad id
            "id=1,addr=",                // empty addr
            "id=1,addr=h:1,threads=0",   // zero threads
            "id=1,addr=h:1,threads=abc", // bad threads
            "id=1,addr=h:1,owns=bogus",  // bad owns
            "id=1,addr=h:1,color=red",   // unknown field
            "id=1 addr=h:1",             // wrong field separator
        ] {
            assert!(
                parse_peer_spec(bad).is_err(),
                "peer spec {bad:?} was not rejected"
            );
        }
    }

    #[test]
    fn owns_specs_parse_and_roundtrip() {
        assert_eq!(PeerOwns::from_spec("auto").unwrap(), PeerOwns::Auto);
        assert_eq!(
            PeerOwns::from_spec("full").unwrap(),
            PeerOwns::Explicit(RangeSet::full())
        );
        assert_eq!(
            PeerOwns::from_spec("none").unwrap(),
            PeerOwns::Explicit(RangeSet::empty())
        );
        let ranges = PeerOwns::from_spec("0x0-0x7fff+0xc000-0xffff").unwrap();
        assert_eq!(
            ranges,
            PeerOwns::Explicit(RangeSet::from_ranges([
                HashRange::new(0, 0x7fff),
                HashRange::new(0xc000, 0xffff)
            ]))
        );
        for owns in [
            PeerOwns::Auto,
            PeerOwns::Explicit(RangeSet::empty()),
            PeerOwns::Explicit(RangeSet::full()),
            ranges,
        ] {
            assert_eq!(PeerOwns::from_spec(&owns.to_string()).unwrap(), owns);
        }
    }
}
