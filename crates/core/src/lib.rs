//! Shadowfax: a distributed, elastic, larger-than-memory key-value store.
//!
//! This crate is the reproduction of the paper's primary contribution
//! ("Achieving High Throughput and Elasticity in a Larger-than-Memory
//! Store", VLDB 2021): a distributed key-value store built over FASTER that
//! serves records spanning DRAM, SSD, and a shared cloud storage tier, and
//! that can shift load between servers with minimal disruption.
//!
//! The three design pillars from the paper map onto this crate as follows:
//!
//! * **Low-cost coordination via global cuts** — ownership transfer,
//!   migration phases, and checkpoints advance over asynchronous epoch cuts
//!   (`shadowfax-epoch`), never by stalling dispatch threads
//!   ([`MigrationReport`], [`Server`]).
//! * **End-to-end asynchronous clients** — [`ShadowfaxClient`] issues
//!   operations with completion callbacks and keeps pipelined batches in
//!   flight on every session.
//! * **Partitioned sessions, shared data** — each [`Server`] dispatch thread
//!   owns its sessions outright while all threads share one FASTER instance;
//!   batches are validated with a single view-number comparison
//!   ([`OwnershipCheck::ViewValidation`]).
//!
//! # Quick start
//!
//! ```
//! use shadowfax::{Cluster, ClusterConfig, ClientConfig, ServerId};
//!
//! let cluster = Cluster::start(ClusterConfig::two_server_test());
//! let mut client = cluster.client(ClientConfig::default());
//! client.upsert(42, b"hello".to_vec());
//! assert_eq!(client.read(42).as_deref(), Some(&b"hello"[..]));
//!
//! // Elastically move 10% of server 0's hash space to the idle server 1.
//! cluster.migrate_fraction(ServerId(0), ServerId(1), 0.10).unwrap();
//! cluster.wait_for_migrations(std::time::Duration::from_secs(30));
//! assert_eq!(client.read(42).as_deref(), Some(&b"hello"[..]));
//! cluster.shutdown();
//! ```

#![warn(missing_docs)]

mod client;
mod cluster;
mod compaction;
mod config;
mod hash_range;
mod indirection;
mod layout;
mod messages;
mod meta;
mod meta_service;
mod migration;
mod recovery;
mod server;

pub use client::{ClientStats, OpCallback, ShadowfaxClient};
pub use cluster::{
    CancellationSnapshot, ChainFetchError, ChainFetchQuery, ChainFetchReply, ChainFetchSnapshot,
    ChainFetchStats, Cluster, ClusterConfig, PeerServer,
};
pub use compaction::CompactionOutcome;
pub use config::{ClientConfig, MigrationConfig, MigrationMode, OwnershipCheck, ServerConfig};
pub use hash_range::{partition_space, partition_space_among, HashRange, RangeSet};
pub use indirection::{IndirectionRecord, INDIRECTION_VALUE_BYTES};
pub use layout::{
    format_ranges_spec, parse_peer_spec, parse_ranges_spec, validate_partition, ClusterLayout,
    LayoutError, PeerOwns,
};
pub use messages::{MigratedItem, MigrationAckPhase, MigrationMsg};
pub use meta::{
    MergeOutcome, MetaError, MetaReplica, MetadataStore, MigrationDep, OwnershipSnapshot,
    ServerMeta,
};
pub use meta_service::MetadataService;
pub use migration::{
    BatchPull, IncomingMigration, MigrationBatchIter, MigrationReport, MigrationRole,
    OutgoingMigration, PendMode, SourcePhase,
};
pub use recovery::{CrashedServer, RecoveryOutcome};
pub use server::{KvNetwork, MigrationConnector, MigrationNetwork, Server, ServerHandle};

// Re-export the request/response types clients interact with.
pub use shadowfax_net::{KvRequest, KvResponse, NetworkProfile, SessionConfig};

/// Identifies one server in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServerId(pub u32);

impl std::fmt::Display for ServerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "server-{}", self.0)
    }
}
