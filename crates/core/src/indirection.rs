//! Indirection records (paper §3.3.2).
//!
//! During migration the source never reads its own SSD.  When a hash chain
//! extends below the in-memory head address, the source instead ships an
//! *indirection record* describing where the rest of the chain lives on the
//! cluster-shared storage tier: the chain's next address, the source's log
//! id, and the hash range being migrated.  The target inserts the indirection
//! record into its own hash index; if a later request hits it, the target
//! lazily fetches the real record from the shared tier, inserts it, and
//! completes the request.
//!
//! On the log an indirection record is an ordinary record with the
//! [`RecordFlags::INDIRECTION`] flag whose value payload is the encoding
//! produced by [`IndirectionRecord::encode_value`]: the first 16 bytes carry
//! the covered hash range (which is what the FASTER chain traversal uses to
//! decide whether a lookup "hits" the record), followed by the chain address,
//! the source log id, and a representative hash used to place the record in
//! the correct bucket chain.

use shadowfax_faster::{Address, RecordFlags};
use shadowfax_storage::LogId;

use crate::hash_range::HashRange;

/// Size of the encoded indirection payload.
pub const INDIRECTION_VALUE_BYTES: usize = 48;

/// A decoded indirection record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndirectionRecord {
    /// The hash range whose records this indirection covers (only lookups in
    /// this range follow the pointer).
    pub range: HashRange,
    /// Address of the next record in the chain, within the source's log
    /// address space (also its byte offset on the shared tier).
    pub chain_address: Address,
    /// The source log's identifier on the shared tier.
    pub source_log: LogId,
    /// A hash value that maps to the same bucket and tag as the source's
    /// bucket entry; the target inserts the record under this hash.
    pub representative_hash: u64,
}

impl IndirectionRecord {
    /// Encodes the payload stored as the record's value.
    pub fn encode_value(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(INDIRECTION_VALUE_BYTES);
        v.extend_from_slice(&self.range.start.to_le_bytes());
        v.extend_from_slice(&self.range.end.to_le_bytes());
        v.extend_from_slice(&self.chain_address.raw().to_le_bytes());
        v.extend_from_slice(&self.source_log.0.to_le_bytes());
        v.extend_from_slice(&self.representative_hash.to_le_bytes());
        v.extend_from_slice(&0u64.to_le_bytes()); // reserved
        v
    }

    /// Decodes a payload produced by [`encode_value`](Self::encode_value).
    /// Returns `None` if the bytes are too short or malformed.
    pub fn decode_value(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < INDIRECTION_VALUE_BYTES - 8 {
            return None;
        }
        let read = |i: usize| u64::from_le_bytes(bytes[i..i + 8].try_into().unwrap());
        let start = read(0);
        let end = read(8);
        if start > end {
            return None;
        }
        Some(IndirectionRecord {
            range: HashRange::new(start, end),
            chain_address: Address::new(read(16) & ((1 << 48) - 1)),
            source_log: LogId(read(24)),
            representative_hash: read(32),
        })
    }

    /// The record flags an indirection record is stored with.
    pub fn flags() -> RecordFlags {
        RecordFlags::INDIRECTION
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let rec = IndirectionRecord {
            range: HashRange::new(1000, 2000),
            chain_address: Address::new(0xABCDEF),
            source_log: LogId(7),
            representative_hash: 0x1234_5678_9ABC_DEF0,
        };
        let bytes = rec.encode_value();
        assert_eq!(bytes.len(), INDIRECTION_VALUE_BYTES);
        assert_eq!(IndirectionRecord::decode_value(&bytes), Some(rec));
    }

    #[test]
    fn decode_rejects_short_or_invalid_payloads() {
        assert_eq!(IndirectionRecord::decode_value(&[0u8; 8]), None);
        // start > end is rejected.
        let mut bytes = vec![0u8; INDIRECTION_VALUE_BYTES];
        bytes[0..8].copy_from_slice(&10u64.to_le_bytes());
        bytes[8..16].copy_from_slice(&5u64.to_le_bytes());
        assert_eq!(IndirectionRecord::decode_value(&bytes), None);
    }

    #[test]
    fn first_sixteen_bytes_are_the_covered_range() {
        // The FASTER chain traversal relies on this layout to match lookups
        // against indirection records without knowing their full structure.
        let rec = IndirectionRecord {
            range: HashRange::new(111, 222),
            chain_address: Address::new(64),
            source_log: LogId(1),
            representative_hash: 0,
        };
        let bytes = rec.encode_value();
        assert_eq!(u64::from_le_bytes(bytes[0..8].try_into().unwrap()), 111);
        assert_eq!(u64::from_le_bytes(bytes[8..16].try_into().unwrap()), 222);
    }
}
