//! Minimal stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to a crates registry, so this shim
//! provides the subset of the crossbeam API the workspace uses: an unbounded
//! MPMC [`channel`] with disconnect detection, and [`utils::CachePadded`].

#![warn(missing_docs)]

pub mod channel {
    //! An unbounded multi-producer/multi-consumer channel.

    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        available: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`] when every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver")
        }
    }

    /// Creates an unbounded channel, returning its two halves.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Sends `msg`, failing only if every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(msg);
            self.shared.available.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Wake blocked receivers so they observe the disconnect.  The
                // (empty) critical section orders this notify after any
                // receiver that already checked `senders` but has not yet
                // parked on the condvar — without it that receiver would
                // sleep through the wakeup forever.
                drop(
                    self.shared
                        .queue
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner),
                );
                self.shared.available.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            match queue.pop_front() {
                Some(msg) => Ok(msg),
                None if self.shared.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(msg) = queue.pop_front() {
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len()
        }

        /// `true` if no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

pub mod utils {
    //! Utility types.

    /// Pads and aligns a value to the length of a cache line, preventing
    /// false sharing between adjacent values.
    #[derive(Default, Clone, Copy, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wraps `value` in cache-line padding.
        pub const fn new(value: T) -> Self {
            CachePadded { value }
        }

        /// Unwraps the padded value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> std::ops::Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> std::ops::DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T: std::fmt::Debug> std::fmt::Debug for CachePadded<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            self.value.fmt(f)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, TryRecvError};
    use super::utils::CachePadded;

    #[test]
    fn send_recv_ordering() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.try_recv().unwrap(), i);
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_detection() {
        let (tx, rx) = unbounded::<u32>();
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        let (tx2, rx2) = unbounded::<u32>();
        drop(rx2);
        assert!(tx2.send(1).is_err());
    }

    #[test]
    fn blocking_recv_across_threads() {
        let (tx, rx) = unbounded();
        let j = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(std::time::Duration::from_millis(10));
        tx.send(42u32).unwrap();
        assert_eq!(j.join().unwrap(), 42);
    }

    #[test]
    fn cache_padded_alignment() {
        let p = CachePadded::new(7u64);
        assert_eq!(*p, 7);
        assert!(std::mem::align_of::<CachePadded<u64>>() >= 64);
    }
}
