//! Minimal std-backed stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to a crates registry, so this shim
//! provides the subset of the `parking_lot` API the workspace uses —
//! [`Mutex`] and [`RwLock`] whose `lock`/`read`/`write` return guards
//! directly instead of `Result`s.  Lock poisoning is ignored, matching
//! parking_lot's semantics (a panicking holder does not poison the lock).

#![warn(missing_docs)]

use std::sync::{self, PoisonError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_lock_still_usable() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }
}
