//! Minimal stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates registry, so this shim
//! provides the subset of the rand 0.8 API the workspace uses: the
//! [`Rng`]/[`RngCore`]/[`SeedableRng`] traits and [`rngs::StdRng`], backed by
//! a xoshiro256** generator seeded through SplitMix64.  Statistical quality
//! is good enough for workload generation; it is **not** cryptographic.

#![warn(missing_docs)]

/// The core of a random number generator: a source of random `u64`s.
pub trait RngCore {
    /// Returns the next random 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from the generator's full range
/// (the rand `Standard` distribution).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types that can be sampled uniformly from a half-open range.
pub trait UniformSample: Sized {
    /// Samples uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "empty sampling range");
                let span = (high as u128).wrapping_sub(low as u128) as u128;
                // Multiply-shift bounded sampling; the bias for spans far
                // below 2^64 is negligible for workload generation.
                let r = rng.next_u64() as u128;
                low + ((r * span) >> 64) as $t
            }
        }
    )*};
}

impl_uniform_int!(u64, u32, u16, usize);

impl UniformSample for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        low + f64::sample(rng) * (high - low)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from the half-open `range`.
    fn gen_range<T: UniformSample>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Generators that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256** seeded via
    /// SplitMix64 (the same seeding scheme the xoshiro authors recommend).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn f64_samples_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen_low = false;
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            seen_low |= x == 10;
        }
        assert!(seen_low, "lower bound never sampled");
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0u64..10) as usize] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }
}
